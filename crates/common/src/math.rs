//! Small linear-algebra and geometry toolkit for the graphics pipeline.
//!
//! Implements exactly what the pipeline needs: 2/3/4-component `f32`
//! vectors, column-major 4×4 matrices with the usual 3D transform
//! constructors, integer screen-space rectangles, and color packing.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 2-component `f32` vector (screen-space positions, texture coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
}

/// A 3-component `f32` vector (object-space positions, normals, colors).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

/// A 4-component `f32` vector (homogeneous/clip-space positions, RGBA).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W component.
    pub w: f32,
}

impl Vec2 {
    /// Constructs a vector from components.
    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Dot product.
    pub fn dot(self, o: Self) -> f32 {
        self.x * o.x + self.y * o.y
    }

    /// Euclidean length.
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }
}

impl Vec3 {
    /// Constructs a vector from components.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// The all-equal vector `(v, v, v)`.
    pub const fn splat(v: f32) -> Self {
        Self::new(v, v, v)
    }

    /// Dot product.
    pub fn dot(self, o: Self) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product (right-handed).
    pub fn cross(self, o: Self) -> Self {
        Self::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Unit-length copy; returns `self` unchanged when near zero length.
    pub fn normalized(self) -> Self {
        let l = self.length();
        if l > 1e-20 {
            self / l
        } else {
            self
        }
    }

    /// Extends to homogeneous coordinates with the given `w`.
    pub fn extend(self, w: f32) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, w)
    }
}

impl Vec4 {
    /// Constructs a vector from components.
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Self { x, y, z, w }
    }

    /// Dot product.
    pub fn dot(self, o: Self) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z + self.w * o.w
    }

    /// Drops the `w` component.
    pub fn truncate(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Perspective divide: `(x/w, y/w, z/w)`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `w` is non-zero.
    pub fn perspective_divide(self) -> Vec3 {
        debug_assert!(self.w.abs() > 1e-20, "perspective divide by ~0");
        Vec3::new(self.x / self.w, self.y / self.w, self.z / self.w)
    }

    /// Component access by index 0..4.
    ///
    /// # Panics
    ///
    /// Panics if `i > 3`.
    pub fn get(self, i: usize) -> f32 {
        match i {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            3 => self.w,
            _ => panic!("Vec4 index {i} out of range"),
        }
    }
}

macro_rules! impl_vec_ops {
    ($t:ty { $($f:ident),+ }) => {
        impl Add for $t {
            type Output = $t;
            fn add(self, o: $t) -> $t { Self { $($f: self.$f + o.$f),+ } }
        }
        impl Sub for $t {
            type Output = $t;
            fn sub(self, o: $t) -> $t { Self { $($f: self.$f - o.$f),+ } }
        }
        impl Mul<f32> for $t {
            type Output = $t;
            fn mul(self, s: f32) -> $t { Self { $($f: self.$f * s),+ } }
        }
        impl Mul for $t {
            type Output = $t;
            fn mul(self, o: $t) -> $t { Self { $($f: self.$f * o.$f),+ } }
        }
        impl Div<f32> for $t {
            type Output = $t;
            fn div(self, s: f32) -> $t { Self { $($f: self.$f / s),+ } }
        }
        impl Neg for $t {
            type Output = $t;
            fn neg(self) -> $t { Self { $($f: -self.$f),+ } }
        }
        impl fmt::Display for $t {
            fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(fm, "(")?;
                let mut first = true;
                $(
                    if !first { write!(fm, ", ")?; }
                    write!(fm, "{}", self.$f)?;
                    #[allow(unused_assignments)]
                    { first = false; }
                )+
                write!(fm, ")")
            }
        }
    };
}

impl_vec_ops!(Vec2 { x, y });
impl_vec_ops!(Vec3 { x, y, z });
impl_vec_ops!(Vec4 { x, y, z, w });

/// A column-major 4×4 `f32` matrix.
///
/// `cols[c]` is column `c`; `mul_vec4` computes `M · v`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// The four columns.
    pub cols: [Vec4; 4],
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Mat4 = Mat4 {
        cols: [
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        ],
    };

    /// Builds a matrix from columns.
    pub const fn from_cols(c0: Vec4, c1: Vec4, c2: Vec4, c3: Vec4) -> Self {
        Self {
            cols: [c0, c1, c2, c3],
        }
    }

    /// Translation by `t`.
    pub fn translate(t: Vec3) -> Self {
        let mut m = Self::IDENTITY;
        m.cols[3] = t.extend(1.0);
        m
    }

    /// Non-uniform scale.
    pub fn scale(s: Vec3) -> Self {
        let mut m = Self::IDENTITY;
        m.cols[0].x = s.x;
        m.cols[1].y = s.y;
        m.cols[2].z = s.z;
        m
    }

    /// Rotation of `angle` radians about the X axis.
    pub fn rotate_x(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols(
            Vec4::new(1.0, 0.0, 0.0, 0.0),
            Vec4::new(0.0, c, s, 0.0),
            Vec4::new(0.0, -s, c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation of `angle` radians about the Y axis.
    pub fn rotate_y(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols(
            Vec4::new(c, 0.0, -s, 0.0),
            Vec4::new(0.0, 1.0, 0.0, 0.0),
            Vec4::new(s, 0.0, c, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Rotation of `angle` radians about the Z axis.
    pub fn rotate_z(angle: f32) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_cols(
            Vec4::new(c, s, 0.0, 0.0),
            Vec4::new(-s, c, 0.0, 0.0),
            Vec4::new(0.0, 0.0, 1.0, 0.0),
            Vec4::new(0.0, 0.0, 0.0, 1.0),
        )
    }

    /// Right-handed perspective projection (OpenGL clip conventions:
    /// visible z in `[-w, w]`).
    pub fn perspective(fov_y: f32, aspect: f32, near: f32, far: f32) -> Self {
        let f = 1.0 / (fov_y * 0.5).tan();
        Self::from_cols(
            Vec4::new(f / aspect, 0.0, 0.0, 0.0),
            Vec4::new(0.0, f, 0.0, 0.0),
            Vec4::new(0.0, 0.0, (far + near) / (near - far), -1.0),
            Vec4::new(0.0, 0.0, 2.0 * far * near / (near - far), 0.0),
        )
    }

    /// Right-handed look-at view matrix.
    pub fn look_at(eye: Vec3, center: Vec3, up: Vec3) -> Self {
        let f = (center - eye).normalized();
        let s = f.cross(up).normalized();
        let u = s.cross(f);
        Self::from_cols(
            Vec4::new(s.x, u.x, -f.x, 0.0),
            Vec4::new(s.y, u.y, -f.y, 0.0),
            Vec4::new(s.z, u.z, -f.z, 0.0),
            Vec4::new(-s.dot(eye), -u.dot(eye), f.dot(eye), 1.0),
        )
    }

    /// Matrix–vector product `M · v`.
    pub fn mul_vec4(&self, v: Vec4) -> Vec4 {
        self.cols[0] * v.x + self.cols[1] * v.y + self.cols[2] * v.z + self.cols[3] * v.w
    }

    /// Matrix–matrix product `self · rhs`.
    pub fn mul_mat4(&self, rhs: &Mat4) -> Mat4 {
        Mat4 {
            cols: [
                self.mul_vec4(rhs.cols[0]),
                self.mul_vec4(rhs.cols[1]),
                self.mul_vec4(rhs.cols[2]),
                self.mul_vec4(rhs.cols[3]),
            ],
        }
    }

    /// Row `r` of the matrix (useful for clip-plane extraction).
    ///
    /// # Panics
    ///
    /// Panics if `r > 3`.
    pub fn row(&self, r: usize) -> Vec4 {
        Vec4::new(
            self.cols[0].get(r),
            self.cols[1].get(r),
            self.cols[2].get(r),
            self.cols[3].get(r),
        )
    }

    /// Flat column-major array of the 16 elements.
    pub fn to_array(&self) -> [f32; 16] {
        let mut out = [0.0; 16];
        for (c, col) in self.cols.iter().enumerate() {
            out[c * 4] = col.x;
            out[c * 4 + 1] = col.y;
            out[c * 4 + 2] = col.z;
            out[c * 4 + 3] = col.w;
        }
        out
    }

    /// Rebuilds a matrix from [`Mat4::to_array`] output.
    pub fn from_array(a: &[f32; 16]) -> Self {
        Self::from_cols(
            Vec4::new(a[0], a[1], a[2], a[3]),
            Vec4::new(a[4], a[5], a[6], a[7]),
            Vec4::new(a[8], a[9], a[10], a[11]),
            Vec4::new(a[12], a[13], a[14], a[15]),
        )
    }
}

impl Default for Mat4 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, rhs: Mat4) -> Mat4 {
        self.mul_mat4(&rhs)
    }
}

/// An inclusive integer rectangle in screen/tile coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct IRect {
    /// Minimum x (inclusive).
    pub x0: i32,
    /// Minimum y (inclusive).
    pub y0: i32,
    /// Maximum x (inclusive).
    pub x1: i32,
    /// Maximum y (inclusive).
    pub y1: i32,
}

impl IRect {
    /// Constructs from inclusive bounds.
    pub const fn new(x0: i32, y0: i32, x1: i32, y1: i32) -> Self {
        Self { x0, y0, x1, y1 }
    }

    /// Empty when the bounds are inverted.
    pub fn is_empty(&self) -> bool {
        self.x1 < self.x0 || self.y1 < self.y0
    }

    /// Number of covered integer cells (0 when empty).
    pub fn area(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.x1 - self.x0 + 1) as u64 * (self.y1 - self.y0 + 1) as u64
        }
    }

    /// Intersection with another rectangle (may be empty).
    pub fn intersect(&self, o: &IRect) -> IRect {
        IRect::new(
            self.x0.max(o.x0),
            self.y0.max(o.y0),
            self.x1.min(o.x1),
            self.y1.min(o.y1),
        )
    }

    /// True when the point lies inside the rectangle.
    pub fn contains(&self, x: i32, y: i32) -> bool {
        x >= self.x0 && x <= self.x1 && y >= self.y0 && y <= self.y1
    }
}

/// Barycentric coordinates of point `p` with respect to triangle `(a, b, c)`
/// in 2D, or `None` for degenerate triangles.
pub fn barycentric(a: Vec2, b: Vec2, c: Vec2, p: Vec2) -> Option<[f32; 3]> {
    let v0 = b - a;
    let v1 = c - a;
    let v2 = p - a;
    let den = v0.x * v1.y - v1.x * v0.y;
    if den.abs() < 1e-12 {
        return None;
    }
    let w1 = (v2.x * v1.y - v1.x * v2.y) / den;
    let w2 = (v0.x * v2.y - v2.x * v0.y) / den;
    Some([1.0 - w1 - w2, w1, w2])
}

/// Twice the signed area of triangle `(a, b, c)`; positive when
/// counter-clockwise in a y-up coordinate system.
pub fn signed_area2(a: Vec2, b: Vec2, c: Vec2) -> f32 {
    (b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y)
}

/// Packs an RGBA color (components clamped to `[0,1]`) into `0xAABBGGRR`
/// byte order — R in the lowest byte, matching a byte-wise `[r, g, b, a]`
/// little-endian framebuffer layout.
pub fn pack_rgba8(r: f32, g: f32, b: f32, a: f32) -> u32 {
    let q = |v: f32| (v.clamp(0.0, 1.0) * 255.0 + 0.5) as u32;
    q(r) | (q(g) << 8) | (q(b) << 16) | (q(a) << 24)
}

/// Unpacks [`pack_rgba8`] output back to floats in `[0,1]`.
pub fn unpack_rgba8(px: u32) -> [f32; 4] {
    [
        (px & 0xff) as f32 / 255.0,
        ((px >> 8) & 0xff) as f32 / 255.0,
        ((px >> 16) & 0xff) as f32 / 255.0,
        ((px >> 24) & 0xff) as f32 / 255.0,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(approx(c.dot(a), 0.0));
        assert!(approx(c.dot(b), 0.0));
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = Vec3::new(3.0, 4.0, 0.0).normalized();
        assert!(approx(v.length(), 1.0));
        // Near-zero vectors pass through untouched.
        let z = Vec3::splat(0.0).normalized();
        assert_eq!(z, Vec3::splat(0.0));
    }

    #[test]
    fn identity_is_neutral() {
        let v = Vec4::new(1.0, -2.0, 3.0, 1.0);
        assert_eq!(Mat4::IDENTITY.mul_vec4(v), v);
        let m = Mat4::rotate_y(0.7);
        let i = Mat4::IDENTITY.mul_mat4(&m);
        for c in 0..4 {
            assert!(approx(i.cols[c].x, m.cols[c].x));
            assert!(approx(i.cols[c].w, m.cols[c].w));
        }
    }

    #[test]
    fn translate_moves_points_not_directions() {
        let t = Mat4::translate(Vec3::new(1.0, 2.0, 3.0));
        let p = t.mul_vec4(Vec4::new(0.0, 0.0, 0.0, 1.0));
        assert_eq!(p.truncate(), Vec3::new(1.0, 2.0, 3.0));
        let d = t.mul_vec4(Vec4::new(1.0, 0.0, 0.0, 0.0));
        assert_eq!(d.truncate(), Vec3::new(1.0, 0.0, 0.0));
    }

    #[test]
    fn rotation_preserves_length() {
        let m = Mat4::rotate_x(1.1).mul_mat4(&Mat4::rotate_z(-0.4));
        let v = Vec4::new(1.0, 2.0, 3.0, 0.0);
        let r = m.mul_vec4(v);
        assert!(approx(r.truncate().length(), v.truncate().length()));
    }

    #[test]
    fn perspective_maps_near_and_far_planes() {
        let m = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 1.0, 10.0);
        let near = m
            .mul_vec4(Vec4::new(0.0, 0.0, -1.0, 1.0))
            .perspective_divide();
        let far = m
            .mul_vec4(Vec4::new(0.0, 0.0, -10.0, 1.0))
            .perspective_divide();
        assert!(approx(near.z, -1.0));
        assert!(approx(far.z, 1.0));
    }

    #[test]
    fn look_at_centers_target() {
        let m = Mat4::look_at(
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        );
        let c = m.mul_vec4(Vec4::new(0.0, 0.0, 0.0, 1.0));
        assert!(approx(c.x, 0.0));
        assert!(approx(c.y, 0.0));
        assert!(approx(c.z, -5.0)); // 5 units in front of the camera
    }

    #[test]
    fn matrix_array_roundtrip() {
        let m = Mat4::perspective(1.0, 1.5, 0.5, 50.0).mul_mat4(&Mat4::rotate_y(0.3));
        let m2 = Mat4::from_array(&m.to_array());
        assert_eq!(m, m2);
    }

    #[test]
    fn barycentric_vertices_and_centroid() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(4.0, 0.0);
        let c = Vec2::new(0.0, 4.0);
        let w = barycentric(a, b, c, a).unwrap();
        assert!(approx(w[0], 1.0) && approx(w[1], 0.0) && approx(w[2], 0.0));
        let centroid = Vec2::new(4.0 / 3.0, 4.0 / 3.0);
        let w = barycentric(a, b, c, centroid).unwrap();
        for wi in w {
            assert!(approx(wi, 1.0 / 3.0));
        }
        // Degenerate triangle
        assert!(barycentric(a, a, b, c).is_none());
    }

    #[test]
    fn irect_basics() {
        let r = IRect::new(0, 0, 3, 1);
        assert_eq!(r.area(), 8);
        assert!(r.contains(3, 1));
        assert!(!r.contains(4, 1));
        let s = r.intersect(&IRect::new(2, 1, 10, 10));
        assert_eq!(s, IRect::new(2, 1, 3, 1));
        assert!(r.intersect(&IRect::new(5, 5, 6, 6)).is_empty());
        assert_eq!(r.intersect(&IRect::new(5, 5, 6, 6)).area(), 0);
    }

    #[test]
    fn rgba_pack_roundtrip() {
        let px = pack_rgba8(1.0, 0.5, 0.0, 1.0);
        let [r, g, b, a] = unpack_rgba8(px);
        assert!(approx(r, 1.0));
        assert!((g - 0.5).abs() < 0.01);
        assert!(approx(b, 0.0));
        assert!(approx(a, 1.0));
        // Out-of-range input clamps rather than wrapping.
        assert_eq!(pack_rgba8(2.0, -1.0, 0.0, 1.0) & 0xffff, 0x00ff);
    }

    #[test]
    fn signed_area_orientation() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(1.0, 0.0);
        let c = Vec2::new(0.0, 1.0);
        assert!(signed_area2(a, b, c) > 0.0);
        assert!(signed_area2(a, c, b) < 0.0);
    }
}
