//! Statistics collection: ratios, running summaries, histograms and
//! windowed time series (used for the paper's bandwidth-vs-time figures).

use crate::types::Cycle;

/// A hit/total style ratio counter (cache hit rates, row-buffer hit rates…).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ratio {
    /// Numerator (e.g. hits).
    pub num: u64,
    /// Denominator (e.g. total accesses).
    pub den: u64,
}

impl Ratio {
    /// Adds one event, hitting or missing.
    pub fn record(&mut self, hit: bool) {
        self.den += 1;
        if hit {
            self.num += 1;
        }
    }

    /// The ratio value, or 0 when no events were recorded.
    pub fn value(&self) -> f64 {
        if self.den == 0 {
            0.0
        } else {
            self.num as f64 / self.den as f64
        }
    }

    /// Merges another ratio's counts into this one.
    pub fn merge(&mut self, other: &Ratio) {
        self.num += other.num;
        self.den += other.den;
    }

    /// Encodes both counts for a snapshot.
    pub fn snap_write(&self, w: &mut crate::snap::SnapWriter) {
        w.put_u64(self.num);
        w.put_u64(self.den);
    }

    /// Decodes counts written by [`Ratio::snap_write`].
    pub fn snap_read(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(Self {
            num: r.get_u64()?,
            den: r.get_u64()?,
        })
    }
}

/// Streaming min/max/mean/count summary.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn add(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Reconstructs a summary from previously-exported parts. `min`/`max` are
    /// ignored when `count == 0`.
    pub fn from_parts(count: u64, sum: f64, min: f64, max: f64) -> Self {
        if count == 0 {
            Self::default()
        } else {
            Self {
                count,
                sum,
                min,
                max,
            }
        }
    }

    /// Merges another summary's samples into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-width-bucket histogram over `[0, bucket_width * buckets)`, with an
/// overflow bucket at the end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `buckets` regular buckets of `bucket_width`
    /// plus one overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width == 0` or `buckets == 0`.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0 && buckets > 0);
        Self {
            bucket_width,
            counts: vec![0; buckets + 1],
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = ((value / self.bucket_width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Reconstructs a histogram from previously-exported parts.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width == 0` or `counts` is empty.
    pub fn from_counts(bucket_width: u64, counts: Vec<u64>) -> Self {
        assert!(bucket_width > 0 && !counts.is_empty());
        Self {
            bucket_width,
            counts,
        }
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Width of each regular bucket.
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merges another histogram's counts into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket widths differ. When the bucket counts differ the
    /// shorter histogram is widened first and overflow samples stay in the
    /// (new) overflow bucket — an approximation, since their exact values are
    /// unknown.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bucket_width, other.bucket_width,
            "cannot merge histograms with different bucket widths"
        );
        if other.counts.len() > self.counts.len() {
            // Keep the overflow bucket last: move our old overflow count into
            // the bucket range it now falls inside of.
            let old_overflow_idx = self.counts.len() - 1;
            self.counts.resize(other.counts.len(), 0);
            let moved = self.counts[old_overflow_idx];
            self.counts[old_overflow_idx] = 0;
            *self.counts.last_mut().unwrap() += moved;
        }
        let last = self.counts.len() - 1;
        for (i, &c) in other.counts.iter().enumerate() {
            let idx = if i == other.counts.len() - 1 { last } else { i };
            self.counts[idx] += c;
        }
    }
}

/// Windowed byte-rate probe producing a bandwidth-over-time series, as used
/// by Figures 10 and 14 of the paper.
#[derive(Debug, Clone)]
pub struct BandwidthProbe {
    window: Cycle,
    cur_window: Cycle,
    cur_bytes: u64,
    total_bytes: u64,
    samples: Vec<(Cycle, u64)>,
}

impl BandwidthProbe {
    /// Creates a probe aggregating bytes over `window`-cycle windows.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: Cycle) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            cur_window: 0,
            cur_bytes: 0,
            total_bytes: 0,
            samples: Vec::new(),
        }
    }

    /// Records `bytes` transferred at `cycle`. Cycles must be non-decreasing.
    pub fn record(&mut self, cycle: Cycle, bytes: u64) {
        let w = cycle / self.window;
        while w > self.cur_window {
            self.samples
                .push((self.cur_window * self.window, self.cur_bytes));
            self.cur_bytes = 0;
            self.cur_window += 1;
        }
        self.cur_bytes += bytes;
        self.total_bytes += bytes;
    }

    /// Flushes the current partial window and returns `(window_start_cycle,
    /// bytes_in_window)` samples.
    pub fn finish(mut self) -> Vec<(Cycle, u64)> {
        self.samples
            .push((self.cur_window * self.window, self.cur_bytes));
        self.samples
    }

    /// Completed-window samples observed so far (excludes the open window).
    pub fn samples(&self) -> &[(Cycle, u64)] {
        &self.samples
    }

    /// All bytes ever recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Window width in cycles.
    pub fn window(&self) -> Cycle {
        self.window
    }
}

/// Pearson correlation coefficient of paired samples, or `None` when either
/// series is constant or the lengths differ / are < 2.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Geometric mean of positive values; returns `None` if empty or any value
/// is non-positive.
pub fn geomean(vals: &[f64]) -> Option<f64> {
    if vals.is_empty() || vals.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = vals.iter().map(|v| v.ln()).sum();
    Some((log_sum / vals.len() as f64).exp())
}

/// Mean absolute relative error `|a-b|/|a|` between a reference series `a`
/// and a measured series `b` (the paper's §3.4 accuracy metric).
pub fn mean_abs_rel_error(reference: &[f64], measured: &[f64]) -> Option<f64> {
    if reference.len() != measured.len() || reference.is_empty() {
        return None;
    }
    let mut acc = 0.0;
    for (&a, &b) in reference.iter().zip(measured) {
        if a == 0.0 {
            return None;
        }
        acc += ((a - b) / a).abs();
    }
    Some(acc / reference.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_value_and_merge() {
        let mut r = Ratio::default();
        assert_eq!(r.value(), 0.0);
        r.record(true);
        r.record(false);
        r.record(true);
        assert!((r.value() - 2.0 / 3.0).abs() < 1e-12);
        let mut r2 = Ratio { num: 1, den: 1 };
        r2.merge(&r);
        assert_eq!(r2.num, 3);
        assert_eq!(r2.den, 4);
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        for v in [3.0, -1.0, 10.0] {
            s.add(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 10.0);
        assert!((s.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10, 3);
        for v in [0, 9, 10, 25, 29, 30, 1000] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 2, 2]);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn bandwidth_probe_windows() {
        let mut p = BandwidthProbe::new(100);
        p.record(10, 64);
        p.record(50, 64);
        p.record(150, 128);
        p.record(420, 32);
        let s = p.finish();
        assert_eq!(s[0], (0, 128));
        assert_eq!(s[1], (100, 128));
        assert_eq!(s[2], (200, 0));
        assert_eq!(s[3], (300, 0));
        assert_eq!(s[4], (400, 32));
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let inv = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &inv).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]).is_none());
        assert!(pearson(&xs, &ys[..3]).is_none());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_none());
        assert!(geomean(&[1.0, 0.0]).is_none());
    }

    #[test]
    fn rel_error_metric() {
        let e = mean_abs_rel_error(&[10.0, 20.0], &[9.0, 22.0]).unwrap();
        assert!((e - 0.1).abs() < 1e-12);
        assert!(mean_abs_rel_error(&[0.0], &[1.0]).is_none());
        assert!(mean_abs_rel_error(&[1.0], &[1.0, 2.0]).is_none());
    }
}
