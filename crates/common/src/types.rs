//! Core vocabulary types: cycles, addresses and component identifiers.

use std::fmt;

/// A simulation time-stamp, measured in core clock cycles.
pub type Cycle = u64;

/// A simulated physical byte address.
pub type Addr = u64;

/// Number of threads in a warp (the paper, like NVIDIA hardware, uses 32).
pub const WARP_SIZE: usize = 32;

/// Identifier of a GPU SIMT cluster (the paper's "SIMT core cluster").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClusterId(pub usize);

/// Identifier of a SIMT core within the whole GPU (global index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub usize);

/// Identifier of a warp slot within one SIMT core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WarpId(pub usize);

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl fmt::Display for WarpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "warp{}", self.0)
    }
}

/// The SoC agent a memory request originates from.
///
/// DASH and HMC (case study I) schedule DRAM accesses by source class, so
/// every request that reaches a memory controller carries one of these tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrafficSource {
    /// A CPU core, by index within the CPU cluster.
    Cpu(usize),
    /// The GPU (all SIMT clusters share one tag, as in the paper).
    Gpu,
    /// The display controller DMA engine.
    Display,
    /// Any other DMA/IP block (unused by the paper's case studies but kept
    /// for extensibility — requirement (3) of the paper's intro).
    OtherIp(usize),
}

impl TrafficSource {
    /// True when the source is a CPU core.
    pub fn is_cpu(self) -> bool {
        matches!(self, TrafficSource::Cpu(_))
    }

    /// True when the source is an accelerator/IP block (GPU, display, other).
    pub fn is_ip(self) -> bool {
        !self.is_cpu()
    }

    /// Encodes the source for a snapshot (tag byte plus optional index).
    pub fn snap_write(self, w: &mut crate::snap::SnapWriter) {
        match self {
            TrafficSource::Cpu(i) => {
                w.put_u8(0);
                w.put_usize(i);
            }
            TrafficSource::Gpu => w.put_u8(1),
            TrafficSource::Display => w.put_u8(2),
            TrafficSource::OtherIp(i) => {
                w.put_u8(3);
                w.put_usize(i);
            }
        }
    }

    /// Decodes a source written by [`TrafficSource::snap_write`].
    pub fn snap_read(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        Ok(match r.get_u8()? {
            0 => TrafficSource::Cpu(r.get_usize()?),
            1 => TrafficSource::Gpu,
            2 => TrafficSource::Display,
            3 => TrafficSource::OtherIp(r.get_usize()?),
            _ => {
                return Err(crate::snap::SnapError::BadValue {
                    what: "traffic source tag",
                })
            }
        })
    }
}

impl fmt::Display for TrafficSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficSource::Cpu(i) => write!(f, "cpu{i}"),
            TrafficSource::Gpu => write!(f, "gpu"),
            TrafficSource::Display => write!(f, "display"),
            TrafficSource::OtherIp(i) => write!(f, "ip{i}"),
        }
    }
}

/// Read/write direction of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load; the requester waits for the data.
    Read,
    /// A store; modeled as posted (no response needed by the requester).
    Write,
}

impl AccessKind {
    /// Encodes the kind for a snapshot (one tag byte).
    pub fn snap_write(self, w: &mut crate::snap::SnapWriter) {
        w.put_u8(match self {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
        });
    }

    /// Decodes a kind written by [`AccessKind::snap_write`].
    pub fn snap_read(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        match r.get_u8()? {
            0 => Ok(AccessKind::Read),
            1 => Ok(AccessKind::Write),
            _ => Err(crate::snap::SnapError::BadValue {
                what: "access kind tag",
            }),
        }
    }
}

/// Aligns `addr` down to a `block` boundary. `block` must be a power of two.
///
/// # Examples
///
/// ```
/// # use emerald_common::types::align_down;
/// assert_eq!(align_down(0x1234, 128), 0x1200);
/// ```
pub fn align_down(addr: Addr, block: u64) -> Addr {
    debug_assert!(block.is_power_of_two());
    addr & !(block - 1)
}

/// Integer ceiling division.
///
/// ```
/// # use emerald_common::types::div_ceil;
/// assert_eq!(div_ceil(10, 4), 3);
/// assert_eq!(div_ceil(8, 4), 2);
/// assert_eq!(div_ceil(0, 4), 0);
/// ```
pub fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_source_classes() {
        assert!(TrafficSource::Cpu(0).is_cpu());
        assert!(!TrafficSource::Cpu(3).is_ip());
        assert!(TrafficSource::Gpu.is_ip());
        assert!(TrafficSource::Display.is_ip());
        assert!(TrafficSource::OtherIp(1).is_ip());
    }

    #[test]
    fn align_down_powers_of_two() {
        assert_eq!(align_down(0, 64), 0);
        assert_eq!(align_down(63, 64), 0);
        assert_eq!(align_down(64, 64), 64);
        assert_eq!(align_down(0xffff_ffff, 128), 0xffff_ff80);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ClusterId(2).to_string(), "cluster2");
        assert_eq!(CoreId(5).to_string(), "core5");
        assert_eq!(WarpId(7).to_string(), "warp7");
        assert_eq!(TrafficSource::Cpu(1).to_string(), "cpu1");
        assert_eq!(TrafficSource::Gpu.to_string(), "gpu");
    }
}
