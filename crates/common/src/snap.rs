//! Versioned binary snapshot codec for checkpoint/restore.
//!
//! A snapshot is a self-describing byte container:
//!
//! ```text
//! magic "EMSNAP\0\0" | format version u32 | config hash u64
//!     | body: tagged length-prefixed sections (arbitrarily nested)
//!     | trailing FxHash-64 checksum over every preceding byte
//! ```
//!
//! Components implement [`Snapshot`]/[`Restore`] and write their state as
//! one section each; sections nest (a GPU section contains per-core
//! sections, the memory system contains per-channel sections). All
//! multi-byte values are little-endian; lengths are `u64`; floats are
//! stored as their IEEE-754 bit patterns so restore is bit-exact.
//!
//! Failure policy: decoding never panics and never allocates unbounded
//! memory from attacker-controlled lengths. Every malformed input maps to
//! a typed [`SnapError`] — bad magic, version skew, config-hash mismatch,
//! truncation, checksum mismatch, or a value that fails validation. The
//! trailing checksum means *any* single-byte corruption of a well-formed
//! snapshot is caught at [`open_container`] time, before a single section
//! is interpreted.

use std::fmt;
use std::hash::Hasher;

/// Leading magic bytes of every snapshot container.
pub const MAGIC: [u8; 8] = *b"EMSNAP\0\0";

/// Current snapshot format version. Bump on any incompatible layout
/// change; old snapshots then fail with [`SnapError::VersionSkew`]
/// instead of being misinterpreted.
pub const FORMAT_VERSION: u32 = 1;

/// Bytes of fixed container overhead: magic + version + config hash +
/// trailing checksum.
pub const CONTAINER_OVERHEAD: usize = 8 + 4 + 8 + 8;

/// A typed decoding failure. Restore never panics; it returns one of
/// these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The container does not start with [`MAGIC`].
    BadMagic,
    /// The container was written by an incompatible format version.
    VersionSkew {
        /// Version found in the container.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The snapshot was taken under a different configuration.
    ConfigHashMismatch {
        /// Hash found in the container.
        found: u64,
        /// Hash of the configuration restore was asked to use.
        expected: u64,
    },
    /// The input ended (or a section boundary was hit) before a value
    /// could be read.
    Truncated {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Bytes the read needed.
        need: usize,
    },
    /// A value decoded but failed validation (impossible length, count
    /// mismatch against the live configuration, bad enum tag, ...).
    BadValue {
        /// What failed to validate.
        what: &'static str,
    },
    /// A section tag did not match what the reader expected.
    SectionMismatch {
        /// Tag the caller expected.
        expected: u32,
        /// Tag found in the stream.
        found: u32,
    },
    /// The trailing checksum does not match the container contents.
    ChecksumMismatch,
    /// A section or the container body was not fully consumed.
    TrailingBytes {
        /// Offset of the first unconsumed byte.
        offset: usize,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "not an Emerald snapshot (bad magic)"),
            SnapError::VersionSkew { found, expected } => {
                write!(f, "snapshot format version {found}, expected {expected}")
            }
            SnapError::ConfigHashMismatch { found, expected } => write!(
                f,
                "snapshot config hash {found:#018x} does not match live config {expected:#018x}"
            ),
            SnapError::Truncated { offset, need } => {
                write!(
                    f,
                    "snapshot truncated at byte {offset} (needed {need} more)"
                )
            }
            SnapError::BadValue { what } => write!(f, "invalid snapshot value: {what}"),
            SnapError::SectionMismatch { expected, found } => {
                write!(f, "expected section {expected:#x}, found {found:#x}")
            }
            SnapError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapError::TrailingBytes { offset } => {
                write!(f, "unconsumed snapshot bytes starting at {offset}")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Hashes a configuration's canonical representation (its `Debug` text)
/// into the `config hash` header field.
pub fn config_hash(debug_repr: &str) -> u64 {
    let mut h = crate::hash::FxHasher::default();
    h.write(debug_repr.as_bytes());
    h.finish()
}

fn payload_checksum(bytes: &[u8]) -> u64 {
    let mut h = crate::hash::FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// A component that can write its state into a snapshot.
pub trait Snapshot {
    /// Appends this component's state (normally as one section).
    fn snapshot(&self, w: &mut SnapWriter);
}

/// A component that can overwrite its state from a snapshot.
///
/// Restore targets are freshly constructed from the *same configuration*
/// the snapshot was taken under; `restore` then replaces every dynamic
/// field. Implementations must validate counts against their live
/// structure and return [`SnapError::BadValue`] on mismatch — never
/// panic, never index unchecked.
pub trait Restore {
    /// Reads this component's section and overwrites its state.
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

/// Append-only snapshot encoder.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
    open: Vec<usize>,
}

impl SnapWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far (diagnostics).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends an `f32` as its bit pattern (bit-exact round trip).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends an `f64` as its bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends an `Option` as a presence byte plus the value.
    pub fn put_opt<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            Some(x) => {
                self.put_bool(true);
                f(self, x);
            }
            None => self.put_bool(false),
        }
    }

    /// Appends a length-prefixed sequence.
    pub fn put_seq<T>(
        &mut self,
        items: impl ExactSizeIterator<Item = T>,
        mut f: impl FnMut(&mut Self, T),
    ) {
        self.put_usize(items.len());
        for it in items {
            f(self, it);
        }
    }

    /// Opens a tagged section; its length is patched on
    /// [`SnapWriter::end_section`].
    pub fn begin_section(&mut self, tag: u32) {
        self.put_u32(tag);
        self.open.push(self.buf.len());
        self.put_u64(0); // placeholder length
    }

    /// Closes the innermost open section.
    ///
    /// # Panics
    ///
    /// Panics if no section is open (an encoder bug, not a data error).
    pub fn end_section(&mut self) {
        let at = self.open.pop().expect("end_section without begin_section");
        let len = (self.buf.len() - at - 8) as u64;
        self.buf[at..at + 8].copy_from_slice(&len.to_le_bytes());
    }

    /// Writes one complete tagged section via a closure.
    pub fn section(&mut self, tag: u32, f: impl FnOnce(&mut Self)) {
        self.begin_section(tag);
        f(self);
        self.end_section();
    }

    /// Finishes encoding, returning the raw body bytes (no container
    /// header).
    ///
    /// # Panics
    ///
    /// Panics if a section is still open (an encoder bug).
    pub fn into_bytes(self) -> Vec<u8> {
        assert!(self.open.is_empty(), "unclosed snapshot section");
        self.buf
    }
}

/// Bounds-checked snapshot decoder over a byte slice.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
    limits: Vec<usize>,
}

impl<'a> SnapReader<'a> {
    /// Creates a reader over raw body bytes (no container header). Use
    /// [`open_container`] for full snapshots.
    pub fn new(buf: &'a [u8]) -> Self {
        Self {
            buf,
            pos: 0,
            limits: Vec::new(),
        }
    }

    fn limit(&self) -> usize {
        self.limits.last().copied().unwrap_or(self.buf.len())
    }

    /// Bytes left before the current section (or input) ends.
    pub fn remaining(&self) -> usize {
        self.limit() - self.pos
    }

    /// Current byte offset (diagnostics).
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated {
                offset: self.pos,
                need: n - self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, SnapError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `usize` stored as `u64`.
    pub fn get_usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.get_u64()?).map_err(|_| SnapError::BadValue {
            what: "usize overflows host word",
        })
    }

    /// Reads a `bool`; any byte other than 0/1 is invalid.
    pub fn get_bool(&mut self) -> Result<bool, SnapError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::BadValue { what: "bool tag" }),
        }
    }

    /// Reads an `f32` bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, SnapError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a sequence length whose elements occupy at least `elem_min`
    /// bytes each, rejecting lengths that cannot fit in the remaining
    /// input — a corrupt length can therefore never trigger a huge
    /// allocation.
    pub fn get_len(&mut self, elem_min: usize) -> Result<usize, SnapError> {
        let n = self.get_usize()?;
        let cap = self.remaining().checked_div(elem_min).unwrap_or(usize::MAX);
        if n > cap {
            return Err(SnapError::BadValue {
                what: "sequence length exceeds remaining input",
            });
        }
        Ok(n)
    }

    /// Reads a length-prefixed byte slice (borrowed, zero-copy).
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.get_len(1)?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| SnapError::BadValue {
            what: "string is not UTF-8",
        })
    }

    /// Reads an `Option` written by [`SnapWriter::put_opt`].
    pub fn get_opt<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, SnapError>,
    ) -> Result<Option<T>, SnapError> {
        if self.get_bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed sequence into a `Vec`.
    pub fn get_seq<T>(
        &mut self,
        elem_min: usize,
        mut f: impl FnMut(&mut Self) -> Result<T, SnapError>,
    ) -> Result<Vec<T>, SnapError> {
        let n = self.get_len(elem_min.max(1))?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Enters a section, verifying its tag. Reads inside are bounded by
    /// the section's recorded length.
    pub fn begin_section(&mut self, tag: u32) -> Result<(), SnapError> {
        let found = self.get_u32()?;
        if found != tag {
            return Err(SnapError::SectionMismatch {
                expected: tag,
                found,
            });
        }
        let len = self.get_usize()?;
        if len > self.remaining() {
            return Err(SnapError::Truncated {
                offset: self.pos,
                need: len - self.remaining(),
            });
        }
        self.limits.push(self.pos + len);
        Ok(())
    }

    /// Leaves the innermost section, requiring it was consumed exactly.
    pub fn end_section(&mut self) -> Result<(), SnapError> {
        let limit = self
            .limits
            .pop()
            .expect("end_section without begin_section");
        if self.pos != limit {
            return Err(SnapError::TrailingBytes { offset: self.pos });
        }
        Ok(())
    }

    /// Reads one complete tagged section via a closure.
    pub fn section<T>(
        &mut self,
        tag: u32,
        f: impl FnOnce(&mut Self) -> Result<T, SnapError>,
    ) -> Result<T, SnapError> {
        self.begin_section(tag)?;
        let v = f(self)?;
        self.end_section()?;
        Ok(v)
    }

    /// Requires the input (or current section) to be fully consumed.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::TrailingBytes { offset: self.pos });
        }
        Ok(())
    }
}

/// Encodes a full snapshot container: header, body written by `f`, and
/// the trailing checksum.
pub fn write_container(cfg_hash: u64, f: impl FnOnce(&mut SnapWriter)) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.buf.extend_from_slice(&MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u64(cfg_hash);
    f(&mut w);
    let mut bytes = w.into_bytes();
    let sum = payload_checksum(&bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
    bytes
}

/// Validates a container's magic, checksum, version and config hash,
/// returning a reader positioned over the body.
///
/// Check order: magic first (is this a snapshot at all?), then the
/// checksum over everything (so arbitrary corruption is reported as
/// corruption, not as a misleading header error), then version, then
/// config hash.
pub fn open_container(bytes: &[u8], expected_cfg_hash: u64) -> Result<SnapReader<'_>, SnapError> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapError::BadMagic);
    }
    if bytes.len() < CONTAINER_OVERHEAD {
        return Err(SnapError::Truncated {
            offset: bytes.len(),
            need: CONTAINER_OVERHEAD - bytes.len(),
        });
    }
    let body_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
    if payload_checksum(&bytes[..body_end]) != stored {
        return Err(SnapError::ChecksumMismatch);
    }
    let mut r = SnapReader::new(&bytes[..body_end]);
    r.pos = MAGIC.len();
    let version = r.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapError::VersionSkew {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let found = r.get_u64()?;
    if found != expected_cfg_hash {
        return Err(SnapError::ConfigHashMismatch {
            found,
            expected: expected_cfg_hash,
        });
    }
    Ok(r)
}

/// An immutable, checksum-validated snapshot shared between sessions.
///
/// Forking N configurations from one warmed snapshot must not copy the
/// bytes N times: validation (magic, checksum, version) happens **once**
/// at construction, the payload lives in an `Arc<[u8]>`, and every
/// [`SharedSnapshot::reader`] call hands out a cheap borrowed
/// [`SnapReader`] positioned over the body. The config hash stamped in
/// the header is recorded so each fork can still assert compatibility
/// against its own live configuration without re-reading the container.
#[derive(Debug, Clone)]
pub struct SharedSnapshot {
    bytes: std::sync::Arc<[u8]>,
    cfg_hash: u64,
    body_end: usize,
}

impl SharedSnapshot {
    /// Validates the container once (magic, checksum, version) and wraps
    /// it for sharing. The stamped config hash is recorded, not checked —
    /// callers compare it via [`SharedSnapshot::cfg_hash`] or let
    /// `reader` enforce it.
    pub fn new(bytes: Vec<u8>) -> Result<Self, SnapError> {
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        if bytes.len() < CONTAINER_OVERHEAD {
            return Err(SnapError::Truncated {
                offset: bytes.len(),
                need: CONTAINER_OVERHEAD - bytes.len(),
            });
        }
        let body_end = bytes.len() - 8;
        let stored = u64::from_le_bytes(bytes[body_end..].try_into().expect("8 bytes"));
        if payload_checksum(&bytes[..body_end]) != stored {
            return Err(SnapError::ChecksumMismatch);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(SnapError::VersionSkew {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let cfg_hash = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        Ok(Self {
            bytes: bytes.into(),
            cfg_hash,
            body_end,
        })
    }

    /// Config hash stamped into the container header at snapshot time.
    pub fn cfg_hash(&self) -> u64 {
        self.cfg_hash
    }

    /// Total container size in bytes (diagnostics).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the container is empty (never — kept for clippy symmetry).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The raw container bytes (e.g. for writing to disk).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// A reader positioned over the body, after checking the stamped
    /// config hash against `expected_cfg_hash`. No per-fork validation
    /// work happens here beyond that comparison — the expensive checksum
    /// ran once in [`SharedSnapshot::new`].
    pub fn reader(&self, expected_cfg_hash: u64) -> Result<SnapReader<'_>, SnapError> {
        if self.cfg_hash != expected_cfg_hash {
            return Err(SnapError::ConfigHashMismatch {
                found: self.cfg_hash,
                expected: expected_cfg_hash,
            });
        }
        let mut r = SnapReader::new(&self.bytes[..self.body_end]);
        r.pos = MAGIC.len() + 4 + 8; // skip magic, version, config hash
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check;
    use crate::rng::Xorshift64;

    #[test]
    fn shared_snapshot_matches_open_container() {
        let full = write_container(0xC0FFEE, |w| {
            w.section(3, |w| {
                w.put_u64(99);
                w.put_str("shared");
            });
        });
        let shared = SharedSnapshot::new(full.clone()).unwrap();
        assert_eq!(shared.cfg_hash(), 0xC0FFEE);
        assert_eq!(shared.as_bytes(), &full[..]);
        // Many readers off one validated container decode identically.
        for _ in 0..3 {
            let mut r = shared.reader(0xC0FFEE).unwrap();
            r.section(3, |r| {
                assert_eq!(r.get_u64()?, 99);
                assert_eq!(r.get_str()?, "shared");
                Ok(())
            })
            .unwrap();
            r.finish().unwrap();
        }
        assert!(matches!(
            shared.reader(0xBAD),
            Err(SnapError::ConfigHashMismatch {
                found: 0xC0FFEE,
                expected: 0xBAD
            })
        ));
    }

    #[test]
    fn shared_snapshot_rejects_corruption_once_up_front() {
        let full = write_container(1, |w| w.put_u64(5));
        let mut bad = full.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0xFF;
        assert!(matches!(
            SharedSnapshot::new(bad),
            Err(SnapError::ChecksumMismatch)
        ));
        assert!(matches!(
            SharedSnapshot::new(b"NOTASNAP".to_vec()),
            Err(SnapError::BadMagic)
        ));
        let mut skew = full.clone();
        skew[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let end = skew.len() - 8;
        let sum = payload_checksum(&skew[..end]);
        skew[end..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            SharedSnapshot::new(skew),
            Err(SnapError::VersionSkew { .. })
        ));
    }

    #[test]
    fn scalar_round_trip_property() {
        check::check("snap_scalar_round_trip", |rng| {
            let u8v = rng.next_u64() as u8;
            let u32v = rng.next_u32();
            let u64v = rng.next_u64();
            let i64v = rng.next_u64() as i64;
            let usv = rng.next_u64() as usize;
            let boolv = rng.chance(0.5);
            let f32v = f32::from_bits(rng.next_u32());
            let f64v = f64::from_bits(rng.next_u64());
            let n = rng.below(64) as usize;
            let bytes: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
            let optv: Option<u64> = if rng.chance(0.5) {
                Some(rng.next_u64())
            } else {
                None
            };
            let seq: Vec<u32> = (0..rng.below(17)).map(|_| rng.next_u32()).collect();

            let mut w = SnapWriter::new();
            w.put_u8(u8v);
            w.put_u32(u32v);
            w.put_u64(u64v);
            w.put_i64(i64v);
            w.put_usize(usv);
            w.put_bool(boolv);
            w.put_f32(f32v);
            w.put_f64(f64v);
            w.put_bytes(&bytes);
            w.put_str("emerald");
            w.put_opt(&optv, |w, v| w.put_u64(*v));
            w.put_seq(seq.iter(), |w, v| w.put_u32(*v));
            let enc = w.into_bytes();

            let mut r = SnapReader::new(&enc);
            assert_eq!(r.get_u8().unwrap(), u8v);
            assert_eq!(r.get_u32().unwrap(), u32v);
            assert_eq!(r.get_u64().unwrap(), u64v);
            assert_eq!(r.get_i64().unwrap(), i64v);
            assert_eq!(r.get_usize().unwrap(), usv);
            assert_eq!(r.get_bool().unwrap(), boolv);
            assert_eq!(r.get_f32().unwrap().to_bits(), f32v.to_bits());
            assert_eq!(r.get_f64().unwrap().to_bits(), f64v.to_bits());
            assert_eq!(r.get_bytes().unwrap(), &bytes[..]);
            assert_eq!(r.get_str().unwrap(), "emerald");
            assert_eq!(r.get_opt(|r| r.get_u64()).unwrap(), optv);
            assert_eq!(r.get_seq(4, |r| r.get_u32()).unwrap(), seq);
            r.finish().unwrap();
        });
    }

    /// Encodes a nested-section fixture from an RNG stream; used by the
    /// round-trip and truncation properties below.
    fn encode_fixture(rng: &mut Xorshift64) -> (Vec<u8>, Vec<u64>) {
        let vals: Vec<u64> = (0..4 + rng.below(8)).map(|_| rng.next_u64()).collect();
        let mut w = SnapWriter::new();
        w.section(0x10, |w| {
            w.put_u64(vals[0]);
            w.section(0x11, |w| {
                w.put_seq(vals.iter(), |w, v| w.put_u64(*v));
            });
            w.section(0x12, |w| {
                w.put_f64(vals[1] as f64);
                w.put_bool(true);
            });
        });
        (w.into_bytes(), vals)
    }

    fn decode_fixture(bytes: &[u8]) -> Result<Vec<u64>, SnapError> {
        let mut r = SnapReader::new(bytes);
        let vals = r.section(0x10, |r| {
            let first = r.get_u64()?;
            let vals = r.section(0x11, |r| r.get_seq(8, |r| r.get_u64()))?;
            r.section(0x12, |r| {
                let _ = r.get_f64()?;
                let _ = r.get_bool()?;
                Ok(())
            })?;
            if vals.first() != Some(&first) {
                return Err(SnapError::BadValue {
                    what: "fixture first value",
                });
            }
            Ok(vals)
        })?;
        r.finish()?;
        Ok(vals)
    }

    #[test]
    fn section_round_trip_property() {
        check::check("snap_section_round_trip", |rng| {
            let (bytes, vals) = encode_fixture(rng);
            assert_eq!(decode_fixture(&bytes).unwrap(), vals);
        });
    }

    #[test]
    fn truncation_at_every_offset_is_typed() {
        check::check_n("snap_truncation_never_panics", 16, |rng| {
            let (bytes, _) = encode_fixture(rng);
            for cut in 0..bytes.len() {
                let r = decode_fixture(&bytes[..cut]);
                assert!(r.is_err(), "decode of {cut}-byte prefix succeeded");
            }
        });
    }

    #[test]
    fn container_truncation_at_every_offset_is_typed() {
        let full = write_container(0xABCD, |w| {
            w.section(1, |w| {
                w.put_u64(7);
                w.put_bytes(&[1, 2, 3]);
            });
        });
        let hash = 0xABCD;
        // The full container opens and decodes.
        let mut r = open_container(&full, hash).unwrap();
        r.section(1, |r| {
            assert_eq!(r.get_u64()?, 7);
            assert_eq!(r.get_bytes()?, &[1, 2, 3]);
            Ok(())
        })
        .unwrap();
        r.finish().unwrap();
        // Every strict prefix fails with a typed error, never a panic.
        for cut in 0..full.len() {
            let res = open_container(&full[..cut], hash).and_then(|mut r| {
                r.section(1, |r| {
                    let _ = r.get_u64()?;
                    let _ = r.get_bytes()?;
                    Ok(())
                })?;
                r.finish()
            });
            assert!(res.is_err(), "{cut}-byte prefix accepted");
        }
    }

    #[test]
    fn any_single_byte_corruption_is_caught() {
        let full = write_container(0x5EED, |w| {
            w.section(2, |w| {
                for i in 0..32u64 {
                    w.put_u64(i);
                }
            });
        });
        for i in 0..full.len() {
            for flip in [0xFFu8, 0x01] {
                let mut bad = full.clone();
                bad[i] ^= flip;
                assert!(
                    open_container(&bad, 0x5EED).is_err(),
                    "corruption at byte {i} (xor {flip:#x}) not caught"
                );
            }
        }
    }

    #[test]
    fn header_errors_are_typed() {
        let full = write_container(10, |w| w.put_u64(1));
        assert!(matches!(
            open_container(b"NOTASNAP", 10),
            Err(SnapError::BadMagic)
        ));
        assert!(matches!(
            open_container(&full[..10], 10),
            Err(SnapError::Truncated { .. })
        ));
        // Wrong config: flip the expected hash, not the bytes.
        assert!(matches!(
            open_container(&full, 11),
            Err(SnapError::ConfigHashMismatch {
                found: 10,
                expected: 11
            })
        ));
        // Version skew: rebuild a container with a bumped version and a
        // valid checksum, so the skew is what's reported.
        let mut skew = full.clone();
        let v = FORMAT_VERSION + 9;
        skew[8..12].copy_from_slice(&v.to_le_bytes());
        let end = skew.len() - 8;
        let sum = payload_checksum(&skew[..end]);
        skew[end..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            open_container(&skew, 10),
            Err(SnapError::VersionSkew { found, .. }) if found == v
        ));
    }

    #[test]
    fn corrupt_length_cannot_force_huge_allocation() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX); // absurd sequence length
        let enc = w.into_bytes();
        let mut r = SnapReader::new(&enc);
        match r.get_seq(8, |r| r.get_u64()) {
            Err(SnapError::BadValue { .. }) => {}
            other => panic!("expected BadValue, got {other:?}"),
        }
    }

    #[test]
    fn section_mismatch_and_overrun_are_typed() {
        let mut w = SnapWriter::new();
        w.section(7, |w| w.put_u64(1));
        let enc = w.into_bytes();
        let mut r = SnapReader::new(&enc);
        assert!(matches!(
            r.begin_section(8),
            Err(SnapError::SectionMismatch {
                expected: 8,
                found: 7
            })
        ));
        // Under-consuming a section is caught at end_section.
        let mut r = SnapReader::new(&enc);
        r.begin_section(7).unwrap();
        assert!(matches!(
            r.end_section(),
            Err(SnapError::TrailingBytes { .. })
        ));
        // Reading past a section's limit is caught as truncation.
        let mut r = SnapReader::new(&enc);
        r.begin_section(7).unwrap();
        r.get_u64().unwrap();
        assert!(matches!(r.get_u64(), Err(SnapError::Truncated { .. })));
    }

    #[test]
    fn config_hash_is_stable_and_discriminating() {
        let a = config_hash("GpuConfig { cores: 4 }");
        let b = config_hash("GpuConfig { cores: 4 }");
        let c = config_hash("GpuConfig { cores: 8 }");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
