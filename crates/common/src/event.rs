//! The discrete-event clocking contract.
//!
//! Emerald's reference clock ticks every component every cycle. That is
//! simple and obviously correct, but most SoC cycles are idle: the GPU is
//! quiescent between draws, DRAM accesses in service carry precomputed
//! completion cycles, the display DMA sleeps between beam-position
//! unlocks, and scripted CPUs poll a fence every few hundred cycles. The
//! [`NextEvent`] trait lets the top-level loop ask each component for the
//! earliest cycle at which its state can change *of its own accord*, and
//! jump straight to the minimum instead of grinding through no-op ticks.
//!
//! # The contract
//!
//! `next_event(now)` returns the earliest cycle `t > now` at which the
//! component's observable state may change **without any new external
//! input**, or `None` if the component is fully passive (it will never
//! change again unless something is pushed into it). The binding
//! invariant:
//!
//! > Ticking the component at every cycle in `(now, t)` with no new
//! > input must be a state no-op — bit-for-bit, including statistics.
//!
//! A component that cannot cheaply prove a quiet stretch simply returns
//! `Some(now + 1)`, which disables skipping past it; that is always
//! correct. Reporting an *earlier* cycle than the true next event is
//! merely conservative (the loop wakes, ticks once, finds nothing, and
//! asks again). Reporting a *later* cycle is the only unsafe direction:
//! the loop would jump over a real state transition and silently diverge
//! from the reference clocking. The oracle harness in `tests/event_skip.rs`
//! and the conformance skip axis exist to catch exactly that.
//!
//! Skipping is gated by `EMERALD_SKIP` (default on); the per-cycle
//! reference clocking is preserved forever as the oracle's ground truth.

use crate::types::Cycle;

/// A component that can report the next cycle at which it has work.
///
/// See the [module documentation](self) for the precise contract and why
/// under-reporting pending work is the only unsafe direction.
pub trait NextEvent {
    /// Earliest cycle `> now` at which this component's state can change
    /// without new external input; `None` when it is fully passive.
    fn next_event(&self, now: Cycle) -> Option<Cycle>;
}

/// Folds two optional event times into the earlier one.
///
/// `None` means "no event" and loses to any concrete cycle:
///
/// ```
/// # use emerald_common::event::earliest;
/// assert_eq!(earliest(None, None), None);
/// assert_eq!(earliest(Some(5), None), Some(5));
/// assert_eq!(earliest(None, Some(7)), Some(7));
/// assert_eq!(earliest(Some(5), Some(7)), Some(5));
/// ```
pub fn earliest(a: Option<Cycle>, b: Option<Cycle>) -> Option<Cycle> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Reads the `EMERALD_SKIP` knob: event-driven time skipping is on by
/// default; `0`, `off` or `false` (case-insensitive) select the per-cycle
/// reference clocking.
pub fn skip_from_env() -> bool {
    match std::env::var("EMERALD_SKIP") {
        Ok(v) => {
            let v = v.trim();
            !(v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false"))
        }
        Err(_) => true,
    }
}

/// Reads the `EMERALD_CPU_BATCH` knob: batched CPU `Work`-phase execution
/// (run-until-interaction) is on by default; `0`, `off` or `false`
/// (case-insensitive) select the per-cycle reference CPU clocking.
pub fn cpu_batch_from_env() -> bool {
    match std::env::var("EMERALD_CPU_BATCH") {
        Ok(v) => {
            let v = v.trim();
            !(v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false"))
        }
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_prefers_concrete_and_minimum() {
        assert_eq!(earliest(None, None), None);
        assert_eq!(earliest(Some(3), None), Some(3));
        assert_eq!(earliest(None, Some(3)), Some(3));
        assert_eq!(earliest(Some(9), Some(3)), Some(3));
        assert_eq!(earliest(Some(3), Some(9)), Some(3));
    }
}
