//! Deterministic pseudo-random number generation.
//!
//! Every stochastic decision in the simulator (DASH's probabilistic
//! scheduling, synthetic CPU traffic, workload jitter) draws from an
//! explicitly-seeded [`Xorshift64`] so that runs are bit-reproducible.

/// An `xorshift64*` PRNG — tiny, fast, and good enough for scheduling noise.
///
/// # Examples
///
/// ```
/// use emerald_common::rng::Xorshift64;
///
/// let mut a = Xorshift64::new(42);
/// let mut b = Xorshift64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant (xorshift has an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }

    /// Uniform double in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift; bias is negligible for simulator purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// The raw internal state, for checkpointing. Feed it back through
    /// [`Xorshift64::from_state`] to resume the exact stream position.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator from a raw [`Xorshift64::state`] value.
    /// Unlike [`Xorshift64::new`] this performs no zero-remapping: the
    /// value must come from `state()` (which can never be zero).
    ///
    /// # Panics
    ///
    /// Panics if `state == 0` (not a reachable generator state).
    pub fn from_state(state: u64) -> Self {
        assert!(state != 0, "zero is not a valid xorshift state");
        Self { state }
    }

    /// Advances the generator by `n` draws without using the outputs.
    ///
    /// `discard(n)` leaves the generator in exactly the state `n` calls to
    /// [`Xorshift64::next_u64`] would — every derived draw (`below`,
    /// `chance`, ...) consumes one raw output, so batch replay code can
    /// skip a known number of draws and stay on the reference stream.
    pub fn discard(&mut self, n: u64) {
        // The xorshift step is the state transition; the multiply only
        // shapes the output, so discarding needs just the shifts.
        let mut x = self.state;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
        }
        self.state = x;
    }
}

impl Default for Xorshift64 {
    fn default() -> Self {
        Self::new(0xE43A_1D0C)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Xorshift64::new(7);
        let mut b = Xorshift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = Xorshift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = Xorshift64::new(3);
        for _ in 0..1000 {
            let f = r.next_f32();
            assert!((0.0..1.0).contains(&f));
            let d = r.next_f64();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Xorshift64::new(5);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = Xorshift64::new(11);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.below(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b} out of range");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Xorshift64::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut r = Xorshift64::new(0xFEED);
        for _ in 0..17 {
            r.next_u64();
        }
        let mut resumed = Xorshift64::from_state(r.state());
        for _ in 0..100 {
            assert_eq!(r.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn discard_equals_n_draws() {
        for seed in [1u64, 7, 0xDEAD_BEEF, u64::MAX] {
            for n in [0u64, 1, 2, 13, 100, 1000] {
                let mut drawn = Xorshift64::new(seed);
                for _ in 0..n {
                    drawn.next_u64();
                }
                let mut skipped = Xorshift64::new(seed);
                skipped.discard(n);
                assert_eq!(
                    drawn, skipped,
                    "discard({n}) state mismatch for seed {seed:#x}"
                );
                assert_eq!(drawn.next_u64(), skipped.next_u64());
            }
        }
    }

    #[test]
    fn discard_locked_vectors() {
        // Locked outputs: the draw immediately after discard(n) from fixed
        // seeds. Any change to the state-transition function breaks these.
        let cases: [(u64, u64, u64); 4] = [
            (42, 1, 0x95BC_77BF_EE2D_32A3),
            (42, 10, 0x9610_69F7_1A48_3203),
            (0xC0DE, 100, 0xD91D_A0CB_8E2E_FD52),
            (1, 1000, 0xBE83_F3FE_620A_4D49),
        ];
        for (seed, n, expect) in cases {
            let mut r = Xorshift64::new(seed);
            r.discard(n);
            assert_eq!(
                r.next_u64(),
                expect,
                "locked vector for seed {seed}, discard({n})"
            );
        }
    }
}
