//! Shared foundation for the Emerald-rs simulator.
//!
//! This crate holds the vocabulary types used by every other Emerald crate:
//!
//! * [`types`] — cycle counters, addresses, component identifiers and the
//!   traffic-source tags that the SoC memory controllers schedule by.
//! * [`stats`] — counters, ratios, histograms and time-series probes used to
//!   produce the paper's figures.
//! * [`rng`] — a small deterministic PRNG (`xorshift64*`); simulators must be
//!   reproducible, so no ambient OS entropy is ever used.
//! * [`math`] — vectors, matrices and geometric helpers for the graphics
//!   pipeline (3D transforms, bounding boxes, barycentrics).
//! * [`hash`] — a deterministic FxHash-style hasher for per-cycle maps
//!   (no SipHash overhead, no per-map random seed, platform-stable).
//! * [`fifo`] — bounded queues, the basic plumbing of the timing model.
//! * [`check`] — a tiny deterministic property-test harness, so randomized
//!   tests need no external crates (the build must work offline).
//! * [`event`] — the [`event::NextEvent`] discrete-event clocking contract
//!   that lets the top-level loops skip provably idle cycles.
//! * [`json`] — a strict RFC 8259 parser used by schema tests to validate
//!   the serde-free JSON writers (registry dump, Chrome trace, bench
//!   report).
//! * [`snap`] — the versioned binary snapshot codec behind
//!   checkpoint/restore: tagged length-prefixed sections, a trailing
//!   checksum, and typed decode errors (never panics on bad input).
//!
//! # Example
//!
//! ```
//! use emerald_common::math::{Mat4, Vec4};
//!
//! let mvp = Mat4::perspective(60f32.to_radians(), 4.0 / 3.0, 0.1, 100.0);
//! let clip = mvp.mul_vec4(Vec4::new(0.0, 0.0, -1.0, 1.0));
//! assert!(clip.w > 0.0);
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod event;
pub mod fifo;
pub mod hash;
pub mod json;
pub mod math;
pub mod rng;
pub mod snap;
pub mod stats;
pub mod types;

pub use fifo::Fifo;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use rng::Xorshift64;
pub use types::{Addr, ClusterId, CoreId, Cycle, TrafficSource, WarpId};
