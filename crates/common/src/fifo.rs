//! Bounded FIFO queues — the plumbing between timing-model pipeline stages.
//!
//! Hardware queues have finite capacity and exert backpressure; modeling that
//! faithfully is what distinguishes an execution-driven simulator from trace
//! replay (the point of the paper's case study I). [`Fifo`] makes the
//! capacity check explicit at every producer.

use std::collections::VecDeque;

/// A bounded first-in/first-out queue.
///
/// # Examples
///
/// ```
/// use emerald_common::Fifo;
///
/// let mut q = Fifo::new(2);
/// assert!(q.push(1).is_ok());
/// assert!(q.push(2).is_ok());
/// assert!(q.push(3).is_err()); // full — backpressure
/// assert_eq!(q.pop(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> Fifo<T> {
    /// Creates a queue holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`; a zero-entry queue can never be used.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be positive");
        Self {
            items: VecDeque::with_capacity(capacity.min(64)),
            capacity,
        }
    }

    /// Attempts to enqueue; returns the value back on a full queue so the
    /// producer can retry next cycle.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        if self.is_full() {
            Err(value)
        } else {
            self.items.push_back(value);
            Ok(())
        }
    }

    /// Dequeues the oldest entry.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest entry without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when no more entries fit.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Remaining free slots.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Removes and returns the first entry matching `pred` (used by
    /// out-of-order consumers such as the DRAM FR-FCFS scheduler).
    pub fn pop_where<F: FnMut(&T) -> bool>(&mut self, pred: F) -> Option<T> {
        let idx = self.items.iter().position(pred)?;
        self.items.remove(idx)
    }

    /// Drops every queued entry.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl<'a, T> IntoIterator for &'a Fifo<T> {
    type Item = &'a T;
    type IntoIter = std::collections::vec_deque::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_capacity() {
        let mut q = Fifo::new(3);
        for i in 0..3 {
            assert!(q.push(i).is_ok());
        }
        assert!(q.is_full());
        assert_eq!(q.push(99), Err(99));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn fifo_order() {
        let mut q = Fifo::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_where_removes_match_only() {
        let mut q = Fifo::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop_where(|&x| x == 3), Some(3));
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop_where(|&x| x == 3), None);
        let rest: Vec<_> = (0..4).map(|_| q.pop().unwrap()).collect();
        assert_eq!(rest, vec![0, 1, 2, 4]);
    }

    #[test]
    fn free_tracks_occupancy() {
        let mut q = Fifo::new(5);
        assert_eq!(q.free(), 5);
        q.push(1).unwrap();
        assert_eq!(q.free(), 4);
        q.pop();
        assert_eq!(q.free(), 5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Fifo::<u32>::new(0);
    }
}
