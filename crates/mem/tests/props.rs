//! Property tests for the memory substrate.

use emerald_mem::cache::{Access, Cache, CacheConfig};
use emerald_mem::dram::{DramChannel, DramConfig};
use emerald_mem::mapping::{AddressMapping, MappingScheme};
use emerald_mem::req::MemRequest;
use emerald_mem::sched::FrFcfs;
use emerald_common::types::{AccessKind, TrafficSource};
use proptest::prelude::*;

fn mapping_strategy() -> impl Strategy<Value = AddressMapping> {
    (
        prop_oneof![
            Just(MappingScheme::RowRankBankColChan),
            Just(MappingScheme::RowColRankBankChan)
        ],
        1usize..=4,
        1usize..=2,
        prop_oneof![Just(4usize), Just(8), Just(16)],
        prop_oneof![Just(16u64), Just(32), Just(64)],
    )
        .prop_map(|(scheme, channels, ranks, banks, cols)| AddressMapping {
            scheme,
            channels,
            ranks,
            banks,
            cols_per_row: cols,
            line_bytes: 128,
        })
}

proptest! {
    /// Address mappings are bijections on line-aligned addresses.
    #[test]
    fn mapping_roundtrip(m in mapping_strategy(), addr in 0u64..(1 << 30)) {
        let aligned = addr & !(128 - 1);
        let loc = m.decode(aligned);
        prop_assert!(loc.channel < m.channels);
        prop_assert!(loc.rank < m.ranks);
        prop_assert!(loc.bank < m.banks);
        prop_assert!(loc.col < m.cols_per_row);
        prop_assert_eq!(m.encode(loc), aligned);
    }

    /// Distinct line addresses decode to distinct locations.
    #[test]
    fn mapping_is_injective(m in mapping_strategy(), a in 0u64..(1 << 22), b in 0u64..(1 << 22)) {
        let (a, b) = (a & !(128 - 1), b & !(128 - 1));
        if a != b {
            prop_assert_ne!(m.decode(a), m.decode(b));
        }
    }

    /// Cache invariants under arbitrary access/fill interleavings: stats
    /// add up, MSHR occupancy is bounded, and every fill is consistent.
    #[test]
    fn cache_invariants(ops in proptest::collection::vec((0u64..64, any::<bool>(), any::<bool>()), 1..200)) {
        let mut cfg = CacheConfig::small("prop");
        cfg.mshrs = 4;
        let mshr_cap = cfg.mshrs;
        let mut cache = Cache::new(cfg);
        let mut pending: Vec<u64> = Vec::new();
        for (i, (line_idx, is_write, do_fill)) in ops.into_iter().enumerate() {
            let addr = line_idx * 128;
            if do_fill && !pending.is_empty() {
                let line = pending.remove(0);
                cache.fill(line);
            }
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            match cache.access(addr, kind, i as u64, i as u64) {
                Access::Miss { .. } => pending.push(cache.line_addr(addr)),
                Access::Hit | Access::MergedMiss | Access::WriteForward | Access::Stall(_) => {}
            }
            prop_assert!(cache.pending_lines() <= mshr_cap);
        }
        // Drain: after filling everything, reads hit.
        for line in pending {
            cache.fill(line);
        }
        prop_assert_eq!(cache.pending_lines(), 0);
        let s = cache.stats();
        prop_assert_eq!(s.hits.num + s.misses(), s.hits.den);
    }

    /// The DRAM channel always drains, services every request exactly
    /// once, and row-hit accounting is consistent.
    #[test]
    fn dram_drains_and_services_all(addrs in proptest::collection::vec(0u64..(1 << 20), 1..40)) {
        let map = AddressMapping::baseline(1);
        let mut ch = DramChannel::new(DramConfig::lpddr3_1600(), Box::new(FrFcfs::new()));
        let mut sent = 0u64;
        for (i, a) in addrs.iter().enumerate() {
            let req = MemRequest {
                id: i as u64,
                addr: a & !(128 - 1),
                bytes: 128,
                kind: AccessKind::Read,
                source: TrafficSource::Gpu,
                issued: 0,
            };
            if ch.enqueue(req, map.decode(req.addr), 0).is_ok() {
                sent += 1;
            }
        }
        let mut done = 0u64;
        let mut now = 0;
        while !ch.is_idle() {
            ch.tick(now);
            done += ch.pop_finished(now).len() as u64;
            now += 1;
            prop_assert!(now < 2_000_000, "channel failed to drain");
        }
        prop_assert_eq!(done, sent);
        let st = ch.stats();
        prop_assert_eq!(st.serviced, sent);
        prop_assert!(st.row_hits.num <= st.row_hits.den);
        prop_assert!(st.activations <= sent);
    }
}
