//! Property tests for the memory substrate, on the in-tree deterministic
//! harness (`emerald_common::check`); the offline build has no proptest.

use emerald_common::check::check;
use emerald_common::rng::Xorshift64;
use emerald_common::types::{AccessKind, TrafficSource};
use emerald_mem::cache::{Access, Cache, CacheConfig};
use emerald_mem::dram::{DramChannel, DramConfig};
use emerald_mem::mapping::{AddressMapping, MappingScheme};
use emerald_mem::req::MemRequest;
use emerald_mem::sched::FrFcfs;

fn arbitrary_mapping(rng: &mut Xorshift64) -> AddressMapping {
    let scheme = if rng.chance(0.5) {
        MappingScheme::RowRankBankColChan
    } else {
        MappingScheme::RowColRankBankChan
    };
    AddressMapping {
        scheme,
        channels: rng.range(1, 5) as usize,
        ranks: rng.range(1, 3) as usize,
        banks: [4usize, 8, 16][rng.below(3) as usize],
        cols_per_row: [16u64, 32, 64][rng.below(3) as usize],
        line_bytes: 128,
    }
}

/// Address mappings are bijections on line-aligned addresses.
#[test]
fn mapping_roundtrip() {
    check("mapping_roundtrip", |rng| {
        let m = arbitrary_mapping(rng);
        let aligned = rng.below(1 << 30) & !(128 - 1);
        let loc = m.decode(aligned);
        assert!(loc.channel < m.channels);
        assert!(loc.rank < m.ranks);
        assert!(loc.bank < m.banks);
        assert!(loc.col < m.cols_per_row);
        assert_eq!(m.encode(loc), aligned);
    });
}

/// Distinct line addresses decode to distinct locations.
#[test]
fn mapping_is_injective() {
    check("mapping_is_injective", |rng| {
        let m = arbitrary_mapping(rng);
        let a = rng.below(1 << 22) & !(128 - 1);
        let b = rng.below(1 << 22) & !(128 - 1);
        if a != b {
            assert_ne!(m.decode(a), m.decode(b));
        }
    });
}

/// Cache invariants under arbitrary access/fill interleavings: stats
/// add up, MSHR occupancy is bounded, and every fill is consistent.
#[test]
fn cache_invariants() {
    check("cache_invariants", |rng| {
        let mut cfg = CacheConfig::small("prop");
        cfg.mshrs = 4;
        let mshr_cap = cfg.mshrs;
        let mut cache = Cache::new(cfg);
        let mut pending: Vec<u64> = Vec::new();
        let n_ops = rng.range(1, 200);
        for i in 0..n_ops {
            let line_idx = rng.below(64);
            let is_write = rng.chance(0.5);
            let do_fill = rng.chance(0.5);
            let addr = line_idx * 128;
            if do_fill && !pending.is_empty() {
                let line = pending.remove(0);
                cache.fill(line);
            }
            let kind = if is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            match cache.access(addr, kind, i, i) {
                Access::Miss { .. } => pending.push(cache.line_addr(addr)),
                Access::Hit | Access::MergedMiss | Access::WriteForward | Access::Stall(_) => {}
            }
            assert!(cache.pending_lines() <= mshr_cap);
        }
        // Drain: after filling everything, reads hit.
        for line in pending {
            cache.fill(line);
        }
        assert_eq!(cache.pending_lines(), 0);
        let s = cache.stats();
        assert_eq!(s.hits.num + s.misses(), s.hits.den);
    });
}

/// The DRAM channel always drains, services every request exactly
/// once, and row-hit accounting is consistent.
#[test]
fn dram_drains_and_services_all() {
    check("dram_drains_and_services_all", |rng| {
        let map = AddressMapping::baseline(1);
        let mut ch = DramChannel::new(DramConfig::lpddr3_1600(), Box::new(FrFcfs::new()));
        let mut sent = 0u64;
        let n = rng.range(1, 40);
        for i in 0..n {
            let req = MemRequest {
                id: i,
                addr: rng.below(1 << 20) & !(128 - 1),
                bytes: 128,
                kind: AccessKind::Read,
                source: TrafficSource::Gpu,
                issued: 0,
            };
            if ch.enqueue(req, map.decode(req.addr), 0).is_ok() {
                sent += 1;
            }
        }
        let mut done = 0u64;
        let mut now = 0;
        while !ch.is_idle() {
            ch.tick(now);
            done += ch.pop_finished(now).len() as u64;
            now += 1;
            assert!(now < 2_000_000, "channel failed to drain");
        }
        assert_eq!(done, sent);
        let st = ch.stats();
        assert_eq!(st.serviced, sent);
        assert!(st.row_hits.num <= st.row_hits.den);
        assert!(st.activations <= sent);
    });
}
