//! Integration tests for the two SoC memory proposals of case study I:
//! the DASH deadline-aware scheduler (urgency promotion, long vs. short
//! deadlines, DCB vs. DTB clustering) and the HMC source-partitioned
//! channel organization — all driven through the full [`MemorySystem`]
//! façade rather than the scheduler in isolation.

use emerald_common::types::{AccessKind, Cycle, TrafficSource};
use emerald_mem::dash::{Clustering, DashConfig};
use emerald_mem::{DramConfig, MemRequest, MemorySystem, MemorySystemConfig};

fn read(id: u64, addr: u64, source: TrafficSource, now: Cycle) -> MemRequest {
    MemRequest {
        id,
        addr,
        bytes: 128,
        kind: AccessKind::Read,
        source,
        issued: now,
    }
}

/// Runs the system until every outstanding read has responded or the
/// cycle budget runs out; returns (id, finished) pairs.
fn run_until_drained(ms: &mut MemorySystem, expect: usize, budget: Cycle) -> Vec<(u64, Cycle)> {
    let mut done = Vec::new();
    let mut now = 0;
    while done.len() < expect && now < budget {
        ms.tick(now);
        for r in ms.drain_finished(now) {
            done.push((r.id, r.finished));
        }
        now += 1;
    }
    done
}

/// An urgent display controller must be serviced ahead of a backlog of
/// CPU traffic on the same channel; the same backlog without urgency
/// lets the earlier-arriving CPU stream go first.
#[test]
fn urgent_display_overtakes_cpu_backlog() {
    let finish_order = |urgent: bool| -> (Cycle, Cycle) {
        let mut ms = MemorySystem::new(MemorySystemConfig::dash(
            1,
            DramConfig::lpddr3_1600(),
            DashConfig::paper(Clustering::CpuOnly),
        ));
        if urgent {
            // Display at 10% of its frame through 90% of its refresh
            // period: hopelessly behind deadline.
            ms.dash()
                .unwrap()
                .update_progress(TrafficSource::Display, 0.1, 0.9);
        }
        // CPU backlog arrives first (same bank/row stream), display after.
        for i in 0..16u64 {
            ms.enqueue(read(i, i * 128, TrafficSource::Cpu(0), 0), 0)
                .unwrap();
        }
        for i in 0..4u64 {
            ms.enqueue(
                read(100 + i, 1 << 20 | (i * 128), TrafficSource::Display, 0),
                0,
            )
            .unwrap();
        }
        let done = run_until_drained(&mut ms, 20, 200_000);
        assert_eq!(done.len(), 20, "all requests must drain");
        let last_display = done
            .iter()
            .filter(|(id, _)| *id >= 100)
            .map(|&(_, t)| t)
            .max()
            .unwrap();
        let last_cpu = done
            .iter()
            .filter(|(id, _)| *id < 100)
            .map(|&(_, t)| t)
            .max()
            .unwrap();
        (last_display, last_cpu)
    };

    let (disp_urgent, cpu_urgent) = finish_order(true);
    assert!(
        disp_urgent < cpu_urgent,
        "urgent display finishes before the CPU backlog ({disp_urgent} vs {cpu_urgent})"
    );
    let (disp_calm, _) = finish_order(false);
    assert!(
        disp_urgent < disp_calm,
        "urgency must speed the display up ({disp_urgent} vs {disp_calm})"
    );
}

/// Deadline-progress semantics: early in a long period an IP that has
/// barely started is *not* urgent (its progress rate is still fine),
/// while the same completed fraction late in a short period promotes it.
#[test]
fn long_vs_short_deadline_promotion() {
    let ms = MemorySystem::new(MemorySystemConfig::dash(
        1,
        DramConfig::lpddr3_1600(),
        DashConfig::paper(Clustering::CpuOnly),
    ));
    let dash = ms.dash().unwrap();

    // Long deadline, just started: 4% done after 3% of the period.
    dash.update_progress(TrafficSource::OtherIp(0), 0.04, 0.03);
    assert!(
        !dash.inspect(|s| s.is_urgent(TrafficSource::OtherIp(0))),
        "ahead of schedule early in a long period"
    );

    // Short deadline nearly expired with half the work left.
    dash.update_progress(TrafficSource::OtherIp(0), 0.5, 0.95);
    assert!(
        dash.inspect(|s| s.is_urgent(TrafficSource::OtherIp(0))),
        "behind schedule near a short deadline"
    );

    // Deadline feedback is live: catching up demotes again.
    dash.update_progress(TrafficSource::OtherIp(0), 0.99, 0.95);
    assert!(!dash.inspect(|s| s.is_urgent(TrafficSource::OtherIp(0))));

    // Degenerate zero-elapsed report never promotes.
    dash.update_progress(TrafficSource::OtherIp(0), 0.0, 0.0);
    assert!(!dash.inspect(|s| s.is_urgent(TrafficSource::OtherIp(0))));

    // The GPU's threshold (0.9) is stricter than the generic IP's (0.8).
    dash.update_progress(TrafficSource::Gpu, 0.85, 1.0);
    dash.update_progress(TrafficSource::Display, 0.85, 1.0);
    assert!(dash.inspect(|s| s.is_urgent(TrafficSource::Gpu)));
    assert!(!dash.inspect(|s| s.is_urgent(TrafficSource::Display)));
}

/// DCB vs. DTB clustering through the full system: identical traffic
/// (one heavy CPU thread, one light, plus massive GPU streaming) makes
/// the heavy thread memory-intensive under CPU-only bandwidth accounting
/// but *not* when total system bandwidth dilutes the threshold — the
/// §5.1.1 ambiguity the paper's Figures 12–14 hinge on.
#[test]
fn dcb_and_dtb_clustering_diverge_on_identical_traffic() {
    let run = |clustering: Clustering| {
        let cfg = DashConfig {
            quantum: 4_000,
            ..DashConfig::paper(clustering)
        };
        let mut ms = MemorySystem::new(MemorySystemConfig::dash(1, DramConfig::lpddr3_1600(), cfg));
        let mut id = 0u64;
        let mut now = 0;
        let mut pending_cpu: Vec<MemRequest> = Vec::new();
        // Mixed workload across several quanta: CPU 1 is ~8× heavier than
        // CPU 0 and the GPU streams just below the service rate, so every
        // CPU request eventually lands despite the GPU's volume.
        while now < 20_000 {
            if now % 512 == 0 {
                pending_cpu.push(read(id, (id % 512) * 128, TrafficSource::Cpu(1), now));
                id += 1;
            }
            if now % 4096 == 0 {
                pending_cpu.push(read(
                    id,
                    1 << 18 | ((id % 64) * 128),
                    TrafficSource::Cpu(0),
                    now,
                ));
                id += 1;
            }
            pending_cpu.retain(|req| {
                if ms.can_accept(req) {
                    ms.enqueue(*req, now).unwrap();
                    false
                } else {
                    true
                }
            });
            if now % 24 == 0 {
                let gpu = read(id, 1 << 22 | ((id % 2048) * 128), TrafficSource::Gpu, now);
                if ms.can_accept(&gpu) {
                    ms.enqueue(gpu, now).unwrap();
                    id += 1;
                }
            }
            ms.tick(now);
            ms.drain_finished(now);
            now += 1;
        }
        let dash = ms.dash().unwrap();
        assert!(
            dash.inspect(|s| s.quanta) >= 2,
            "several quanta must have elapsed"
        );
        (
            dash.inspect(|s| s.is_intensive(1)),
            dash.inspect(|s| s.is_intensive(0)),
        )
    };

    let (dcb_heavy, dcb_light) = run(Clustering::CpuOnly);
    assert!(dcb_heavy, "DCB: the heavy CPU thread is intensive");
    assert!(!dcb_light, "DCB: the light CPU thread is not");

    let (dtb_heavy, dtb_light) = run(Clustering::System);
    assert!(
        !dtb_heavy && !dtb_light,
        "DTB: GPU bandwidth dominates the total, so no CPU thread crosses the threshold"
    );
}

/// HMC channel partitioning: CPU traffic lands exclusively on the first
/// half of the channels and IP traffic exclusively on the second half,
/// with the IP mapping spreading load across all of its channels.
#[test]
fn hmc_partitions_channels_by_source_class() {
    let mut ms = MemorySystem::new(MemorySystemConfig::hmc(4, DramConfig::lpddr3_1600()));
    // Feed the mixed workload gradually, respecting queue back-pressure.
    let mut pending: Vec<MemRequest> = Vec::new();
    let mut id = 0u64;
    for i in 0..64u64 {
        pending.push(read(id, i * 128, TrafficSource::Cpu((i % 2) as usize), 0));
        id += 1;
        pending.push(read(id + 1000, i * 128, TrafficSource::Gpu, 0));
        id += 1;
        pending.push(read(id + 2000, i * 4096, TrafficSource::Display, 0));
        id += 1;
    }
    pending.reverse();
    let mut now = 0;
    let mut drained = 0usize;
    while drained < 192 && now < 400_000 {
        while let Some(req) = pending.last() {
            if ms.can_accept(req) {
                ms.enqueue(pending.pop().unwrap(), now).unwrap();
            } else {
                break;
            }
        }
        ms.tick(now);
        drained += ms.drain_finished(now).len();
        now += 1;
    }
    assert_eq!(drained, 192, "all requests must drain");

    let stats = ms.channel_stats();
    assert_eq!(stats.len(), 4);
    for (ch, st) in stats.iter().enumerate() {
        let cpu_ch = ch < 2;
        for (src, bytes) in &st.source_bytes {
            assert!(*bytes > 0);
            match src {
                TrafficSource::Cpu(_) => {
                    assert!(cpu_ch, "CPU bytes must stay on channels 0-1, found on {ch}")
                }
                _ => assert!(!cpu_ch, "IP bytes must stay on channels 2-3, found on {ch}"),
            }
        }
    }
    // Both halves actually serviced traffic, and the IP mapping used both
    // of its channels.
    assert!(stats[0].serviced + stats[1].serviced > 0);
    assert!(stats[2].serviced > 0 && stats[3].serviced > 0);
}

/// HMC needs at least one channel per class.
#[test]
#[should_panic(expected = "HMC needs at least one channel")]
fn hmc_rejects_single_channel() {
    let _ = MemorySystemConfig::hmc(1, DramConfig::lpddr3_1600());
}
