//! A DRAM channel: banks, row buffers, a shared data bus, and a pluggable
//! scheduler.
//!
//! The model captures the effects the paper's case study I depends on:
//! row-buffer hits vs. activations (Figure 11's hit-rate and
//! bytes-per-activation metrics), bank-level parallelism (HMC's IP
//! mapping), data-bus bandwidth saturation (the high-load scenario of
//! Figure 12) and scheduler-driven prioritization (DASH).

use crate::mapping::DramLocation;
use crate::req::{MemRequest, MemResponse};
use crate::sched::{bank_index, BankState, DramScheduler, QueuedReq};
use emerald_common::snap::{SnapError, SnapReader, SnapWriter};
use emerald_common::stats::Ratio;
use emerald_common::types::{Cycle, TrafficSource};
use std::collections::BTreeMap;

/// DRAM channel timing/geometry parameters (in core cycles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Column (CAS) latency.
    pub t_cl: u32,
    /// Row activation latency (RAS-to-CAS).
    pub t_rcd: u32,
    /// Precharge latency.
    pub t_rp: u32,
    /// Data-bus occupancy per line transfer. This is the knob that sets
    /// channel bandwidth: `line_bytes / burst_cycles` bytes per cycle.
    pub burst_cycles: u32,
    /// Scheduling queue capacity.
    pub queue_cap: usize,
}

impl DramConfig {
    /// "Regular load": LPDDR3-1333-class bandwidth on a 32-bit channel
    /// (Table 5) — ~5.3 GB/s, i.e. a 128 B line every ~24 cycles at 1 GHz.
    pub fn lpddr3_1333() -> Self {
        Self {
            ranks: 1,
            banks: 8,
            t_cl: 20,
            t_rcd: 20,
            t_rp: 20,
            burst_cycles: 24,
            queue_cap: 64,
        }
    }

    /// "High load" stressor: the paper's 133 Mb/s/pin configuration (§5.2)
    /// — one tenth the data-bus bandwidth, same core timings.
    pub fn low_bandwidth() -> Self {
        Self {
            burst_cycles: 240,
            ..Self::lpddr3_1333()
        }
    }

    /// A milder high-load preset (6× reduced bandwidth) used by the
    /// high-load benches: saturates the system like `low_bandwidth` but
    /// keeps single-core simulation times tractable.
    pub fn high_load() -> Self {
        Self {
            burst_cycles: 144,
            ..Self::lpddr3_1333()
        }
    }

    /// Case-study-II GPU memory: 4-channel LPDDR3-1600-class (Table 7);
    /// per-channel burst is slightly faster than
    /// [`DramConfig::lpddr3_1333`].
    pub fn lpddr3_1600() -> Self {
        Self {
            burst_cycles: 20,
            ..Self::lpddr3_1333()
        }
    }

    /// Total banks in the channel.
    pub fn total_banks(&self) -> usize {
        self.ranks * self.banks
    }
}

/// Aggregated channel statistics.
#[derive(Debug, Clone, Default)]
pub struct ChannelStats {
    /// Row-buffer hit ratio over serviced requests.
    pub row_hits: Ratio,
    /// Row activations performed.
    pub activations: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Requests serviced.
    pub serviced: u64,
    /// Sum of queueing+service latency over read requests (for averages).
    pub read_latency_sum: u64,
    /// Read requests serviced.
    pub reads_serviced: u64,
    /// Bytes by traffic source.
    pub source_bytes: BTreeMap<TrafficSource, u64>,
}

impl ChannelStats {
    /// Bytes transferred per row activation (Figure 11's energy proxy).
    pub fn bytes_per_activation(&self) -> f64 {
        if self.activations == 0 {
            0.0
        } else {
            self.bytes as f64 / self.activations as f64
        }
    }

    /// Mean read latency in cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads_serviced == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads_serviced as f64
        }
    }

    /// Publishes the counters into `reg` under `prefix` (e.g.
    /// `mem.dram.ch0` yields `mem.dram.ch0.row_hits`, `.activations`, …).
    pub fn publish(&self, reg: &mut emerald_obs::Registry, prefix: &str) {
        reg.set_ratio(format!("{prefix}.row_hits"), self.row_hits);
        reg.set_counter(format!("{prefix}.activations"), self.activations);
        reg.set_counter(format!("{prefix}.bytes"), self.bytes);
        reg.set_counter(format!("{prefix}.serviced"), self.serviced);
        reg.set_counter(format!("{prefix}.reads_serviced"), self.reads_serviced);
        reg.set_counter(format!("{prefix}.read_latency_sum"), self.read_latency_sum);
        for (src, bytes) in &self.source_bytes {
            reg.set_counter(format!("{prefix}.source_bytes.{src}"), *bytes);
        }
    }

    /// Merges another channel's statistics into this one.
    pub fn merge(&mut self, o: &ChannelStats) {
        self.row_hits.merge(&o.row_hits);
        self.activations += o.activations;
        self.bytes += o.bytes;
        self.serviced += o.serviced;
        self.read_latency_sum += o.read_latency_sum;
        self.reads_serviced += o.reads_serviced;
        for (s, b) in &o.source_bytes {
            *self.source_bytes.entry(*s).or_insert(0) += b;
        }
    }

    /// Encodes every counter for a snapshot.
    pub fn snap_write(&self, w: &mut SnapWriter) {
        self.row_hits.snap_write(w);
        w.put_u64(self.activations);
        w.put_u64(self.bytes);
        w.put_u64(self.serviced);
        w.put_u64(self.read_latency_sum);
        w.put_u64(self.reads_serviced);
        w.put_seq(self.source_bytes.iter(), |w, (&src, &bytes)| {
            src.snap_write(w);
            w.put_u64(bytes);
        });
    }

    /// Decodes counters written by [`ChannelStats::snap_write`].
    pub fn snap_read(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Self {
            row_hits: Ratio::snap_read(r)?,
            activations: r.get_u64()?,
            bytes: r.get_u64()?,
            serviced: r.get_u64()?,
            read_latency_sum: r.get_u64()?,
            reads_serviced: r.get_u64()?,
            source_bytes: r
                .get_seq(9, |r| Ok((TrafficSource::snap_read(r)?, r.get_u64()?)))?
                .into_iter()
                .collect(),
        })
    }
}

/// One DRAM channel with its scheduler.
#[derive(Debug)]
pub struct DramChannel {
    cfg: DramConfig,
    banks: Vec<BankState>,
    queue: Vec<QueuedReq>,
    bus_free_at: Cycle,
    /// Requests in service: (completion_cycle, request, row_hit).
    in_service: Vec<(Cycle, MemRequest)>,
    scheduler: Box<dyn DramScheduler>,
    stats: ChannelStats,
    /// Trace track id (the owning system sets this to the channel index).
    track: u32,
}

impl DramChannel {
    /// Creates a channel driven by `scheduler`.
    pub fn new(cfg: DramConfig, scheduler: Box<dyn DramScheduler>) -> Self {
        let banks = vec![BankState::idle(); cfg.total_banks()];
        Self {
            cfg,
            banks,
            queue: Vec::new(),
            bus_free_at: 0,
            in_service: Vec::new(),
            scheduler,
            stats: ChannelStats::default(),
            track: 0,
        }
    }

    /// Sets the trace track (channel index) used for emitted trace events.
    pub fn set_trace_track(&mut self, track: u32) {
        self.track = track;
    }

    /// The channel's configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Clears statistics (not queue/bank state).
    pub fn reset_stats(&mut self) {
        self.stats = ChannelStats::default();
    }

    /// Requests waiting to be scheduled.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// True when the scheduling queue cannot accept more requests.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.cfg.queue_cap
    }

    /// Mutable access to the scheduler (for DASH feedback updates).
    pub fn scheduler_mut(&mut self) -> &mut dyn DramScheduler {
        self.scheduler.as_mut()
    }

    /// Enqueues a request already decoded to `loc`; fails when full.
    pub fn enqueue(
        &mut self,
        req: MemRequest,
        loc: DramLocation,
        now: Cycle,
    ) -> Result<(), MemRequest> {
        if self.is_full() {
            return Err(req);
        }
        self.queue.push(QueuedReq {
            req,
            loc,
            arrived: now,
        });
        Ok(())
    }

    /// Advances the channel one cycle: possibly issues one request.
    pub fn tick(&mut self, now: Cycle) {
        self.scheduler.tick(now);
        if self.queue.is_empty() {
            return;
        }
        // Gate issue so the data bus pipeline stays at most one transfer
        // ahead; this bounds in-flight work while keeping the bus busy.
        if self.bus_free_at > now + self.cfg.burst_cycles as Cycle {
            return;
        }
        let Some(idx) = self
            .scheduler
            .pick(&self.queue, &self.banks, self.cfg.banks, now)
        else {
            return;
        };
        let q = self.queue.swap_remove(idx);
        let bi = bank_index(&q.loc, self.cfg.banks);
        let bank = &mut self.banks[bi];

        let start = now.max(bank.ready_at);
        let row_hit = bank.open_row == Some(q.loc.row);
        let mut lat: Cycle = 0;
        if !row_hit {
            if bank.open_row.is_some() {
                lat += self.cfg.t_rp as Cycle;
                emerald_obs::trace::instant_args(
                    emerald_obs::TraceCat::Dram,
                    "row_conflict",
                    self.track,
                    now,
                    &[("bank", bi as u64), ("row", q.loc.row)],
                );
            }
            lat += self.cfg.t_rcd as Cycle;
            self.stats.activations += 1;
            bank.open_row = Some(q.loc.row);
        }
        let col_done = start + lat + self.cfg.t_cl as Cycle;
        let data_start = col_done.max(self.bus_free_at);
        let done = data_start + self.cfg.burst_cycles as Cycle;
        self.bus_free_at = done;
        bank.ready_at = data_start;

        self.stats.row_hits.record(row_hit);
        self.stats.serviced += 1;
        self.stats.bytes += q.req.bytes as u64;
        *self.stats.source_bytes.entry(q.req.source).or_insert(0) += q.req.bytes as u64;
        if q.req.needs_response() {
            self.stats.reads_serviced += 1;
            self.stats.read_latency_sum += done.saturating_sub(q.req.issued);
        }
        self.scheduler.on_service(&q.req, row_hit, now);
        self.in_service.push((done, q.req));
    }

    /// Pops all accesses that completed by `now` (reads and writes; the
    /// caller filters for responses).
    pub fn pop_finished(&mut self, now: Cycle) -> Vec<MemResponse> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.in_service.len() {
            if self.in_service[i].0 <= now {
                let (done, req) = self.in_service.swap_remove(i);
                out.push(req.response(done));
            } else {
                i += 1;
            }
        }
        out
    }

    /// True when no request is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_service.is_empty()
    }
}

impl emerald_common::snap::Snapshot for DramChannel {
    /// Serializes bank timing, the scheduling queue (in exact order —
    /// `tick` uses `swap_remove`, so the physical order is semantic
    /// state), the in-service slab, and statistics. The scheduler box is
    /// not serialized: FR-FCFS is stateless and DASH state lives in the
    /// shared handle snapshotted once at the memory-system level.
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_seq(self.banks.iter(), |w, b| {
            w.put_opt(&b.open_row, |w, &row| w.put_u64(row));
            w.put_u64(b.ready_at);
        });
        w.put_seq(self.queue.iter(), |w, q| {
            q.req.snap_write(w);
            w.put_usize(q.loc.channel);
            w.put_usize(q.loc.rank);
            w.put_usize(q.loc.bank);
            w.put_u64(q.loc.row);
            w.put_u64(q.loc.col);
            w.put_u64(q.arrived);
        });
        w.put_u64(self.bus_free_at);
        w.put_seq(self.in_service.iter(), |w, (done, req)| {
            w.put_u64(*done);
            req.snap_write(w);
        });
        self.stats.snap_write(w);
    }
}

impl emerald_common::snap::Restore for DramChannel {
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let banks = r.get_seq(10, |r| {
            Ok(BankState {
                open_row: r.get_opt(|r| r.get_u64())?,
                ready_at: r.get_u64()?,
            })
        })?;
        if banks.len() != self.cfg.total_banks() {
            return Err(SnapError::BadValue {
                what: "dram bank count mismatch",
            });
        }
        let queue = r.get_seq(40, |r| {
            Ok(QueuedReq {
                req: MemRequest::snap_read(r)?,
                loc: DramLocation {
                    channel: r.get_usize()?,
                    rank: r.get_usize()?,
                    bank: r.get_usize()?,
                    row: r.get_u64()?,
                    col: r.get_u64()?,
                },
                arrived: r.get_u64()?,
            })
        })?;
        if queue.len() > self.cfg.queue_cap {
            return Err(SnapError::BadValue {
                what: "dram queue exceeds configured capacity",
            });
        }
        self.banks = banks;
        self.queue = queue;
        self.bus_free_at = r.get_u64()?;
        self.in_service = r.get_seq(41, |r| Ok((r.get_u64()?, MemRequest::snap_read(r)?)))?;
        self.stats = ChannelStats::snap_read(r)?;
        Ok(())
    }
}

impl emerald_common::event::NextEvent for DramChannel {
    /// A channel with a non-empty scheduling queue makes a decision every
    /// cycle, so it pins the clock to `now + 1`. Otherwise the only
    /// things that can happen are in-service accesses completing (their
    /// cycles were precomputed at issue) and scheduler housekeeping
    /// rollovers — both known in advance.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.queue.is_empty() {
            return Some(now + 1);
        }
        let mut ev = self.scheduler.next_event(now);
        for &(done, _) in &self.in_service {
            ev = emerald_common::event::earliest(ev, Some(done.max(now + 1)));
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::AddressMapping;
    use crate::sched::FrFcfs;
    use emerald_common::types::{AccessKind, TrafficSource};

    fn req(id: u64, addr: u64) -> MemRequest {
        MemRequest {
            id,
            addr,
            bytes: 128,
            kind: AccessKind::Read,
            source: TrafficSource::Gpu,
            issued: 0,
        }
    }

    fn channel() -> (DramChannel, AddressMapping) {
        (
            DramChannel::new(DramConfig::lpddr3_1333(), Box::new(FrFcfs::new())),
            AddressMapping::baseline(1),
        )
    }

    fn run_until_idle(ch: &mut DramChannel, mut now: Cycle) -> (Vec<MemResponse>, Cycle) {
        let mut out = Vec::new();
        while !ch.is_idle() {
            ch.tick(now);
            out.extend(ch.pop_finished(now));
            now += 1;
            assert!(now < 1_000_000, "channel never drained");
        }
        (out, now)
    }

    #[test]
    fn single_read_latency_includes_activation() {
        let (mut ch, map) = channel();
        let r = req(1, 0x1000);
        ch.enqueue(r, map.decode(0x1000), 0).unwrap();
        let (resp, _) = run_until_idle(&mut ch, 0);
        assert_eq!(resp.len(), 1);
        let cfg = DramConfig::lpddr3_1333();
        let expect = (cfg.t_rcd + cfg.t_cl + cfg.burst_cycles) as Cycle;
        assert_eq!(resp[0].finished, expect);
        assert_eq!(ch.stats().activations, 1);
        assert_eq!(ch.stats().row_hits.num, 0);
    }

    #[test]
    fn row_hits_after_first_access() {
        let (mut ch, map) = channel();
        // Four consecutive lines in the same row.
        for i in 0..4u64 {
            ch.enqueue(req(i, i * 128), map.decode(i * 128), 0).unwrap();
        }
        let (resp, _) = run_until_idle(&mut ch, 0);
        assert_eq!(resp.len(), 4);
        assert_eq!(ch.stats().activations, 1);
        assert_eq!(ch.stats().row_hits.num, 3);
        assert!(ch.stats().bytes_per_activation() >= 4.0 * 128.0);
    }

    #[test]
    fn row_conflict_costs_precharge() {
        let (mut ch, map) = channel();
        let row_stride = 32 * 128; // cols_per_row * line (same bank, next row)
        ch.enqueue(req(1, 0), map.decode(0), 0).unwrap();
        let (r1, t1) = run_until_idle(&mut ch, 0);
        ch.enqueue(req(2, 8 * row_stride), map.decode(8 * row_stride), t1)
            .unwrap();
        let (r2, _) = run_until_idle(&mut ch, t1);
        let cfg = DramConfig::lpddr3_1333();
        let lat1 = r1[0].finished;
        let lat2 = r2[0].finished - t1 + 1;
        assert!(
            lat2 >= lat1 + cfg.t_rp as Cycle - 1,
            "lat1={lat1} lat2={lat2}"
        );
        assert_eq!(ch.stats().activations, 2);
    }

    #[test]
    fn bus_bandwidth_bounds_throughput() {
        let (mut ch, map) = channel();
        let n = 32u64;
        for i in 0..n {
            // Same row: all hits after the first, so the bus is the limit.
            ch.enqueue(
                req(i, i * 128 % (32 * 128)),
                map.decode(i * 128 % (32 * 128)),
                0,
            )
            .unwrap_or_else(|_| panic!("queue full"));
        }
        let (resp, end) = run_until_idle(&mut ch, 0);
        assert_eq!(resp.len(), n as usize);
        let min_cycles = n * DramConfig::lpddr3_1333().burst_cycles as u64;
        assert!(end >= min_cycles, "end={end} < bus-bound {min_cycles}");
    }

    #[test]
    fn low_bandwidth_preset_is_slower() {
        let map = AddressMapping::baseline(1);
        let mut fast = DramChannel::new(DramConfig::lpddr3_1333(), Box::new(FrFcfs::new()));
        let mut slow = DramChannel::new(DramConfig::low_bandwidth(), Box::new(FrFcfs::new()));
        for ch in [&mut fast, &mut slow] {
            for i in 0..16u64 {
                ch.enqueue(req(i, i * 128), map.decode(i * 128), 0).unwrap();
            }
        }
        let (_, t_fast) = run_until_idle(&mut fast, 0);
        let (_, t_slow) = run_until_idle(&mut slow, 0);
        assert!(t_slow > 5 * t_fast, "slow={t_slow} fast={t_fast}");
    }

    #[test]
    fn queue_backpressure() {
        let (mut ch, map) = channel();
        let cap = ch.config().queue_cap;
        for i in 0..cap as u64 {
            ch.enqueue(req(i, i * 4096), map.decode(i * 4096), 0)
                .unwrap();
        }
        assert!(ch.is_full());
        assert!(ch.enqueue(req(999, 0), map.decode(0), 0).is_err());
    }

    #[test]
    fn per_source_bytes_accounted() {
        let (mut ch, map) = channel();
        let mut r = req(1, 0);
        r.source = TrafficSource::Display;
        ch.enqueue(r, map.decode(0), 0).unwrap();
        let mut r2 = req(2, 128);
        r2.source = TrafficSource::Cpu(0);
        ch.enqueue(r2, map.decode(128), 0).unwrap();
        run_until_idle(&mut ch, 0);
        assert_eq!(ch.stats().source_bytes[&TrafficSource::Display], 128);
        assert_eq!(ch.stats().source_bytes[&TrafficSource::Cpu(0)], 128);
    }

    #[test]
    fn writes_do_not_produce_read_latency_stats() {
        let (mut ch, map) = channel();
        let w = MemRequest {
            kind: AccessKind::Write,
            ..req(1, 0)
        };
        ch.enqueue(w, map.decode(0), 0).unwrap();
        let (resp, _) = run_until_idle(&mut ch, 0);
        assert_eq!(resp.len(), 1); // completion is still reported
        assert_eq!(ch.stats().reads_serviced, 0);
        assert_eq!(ch.stats().serviced, 1);
    }

    #[test]
    fn next_event_wakes_exactly_at_completion() {
        use emerald_common::event::NextEvent;
        let (mut ch, map) = channel();
        ch.enqueue(req(1, 0x1000), map.decode(0x1000), 0).unwrap();
        // A queued request pins the clock: the scheduler decides next cycle.
        assert_eq!(NextEvent::next_event(&ch, 0), Some(1));
        ch.tick(0); // enters service; completion cycle is precomputed
        let done = NextEvent::next_event(&ch, 0).expect("in-service access is a known event");
        let cfg = DramConfig::lpddr3_1333();
        assert_eq!(done, (cfg.t_rcd + cfg.t_cl + cfg.burst_cycles) as Cycle);
        // The whole gap up to the announced wake is dead...
        for c in 1..done {
            ch.tick(c);
            assert!(ch.pop_finished(c).is_empty(), "completed early at {c}");
            assert_eq!(NextEvent::next_event(&ch, c), Some(done));
        }
        // ...and the wake cycle delivers exactly on time.
        ch.tick(done);
        assert_eq!(ch.pop_finished(done).len(), 1);
        assert!(ch.is_idle());
        assert_eq!(
            NextEvent::next_event(&ch, done),
            None,
            "idle FR-FCFS channel is fully passive"
        );
    }

    #[test]
    fn snapshot_round_trip_resumes_mid_burst_identically() {
        use emerald_common::snap::{Restore, SnapReader, SnapWriter, Snapshot};
        let (mut ch, map) = channel();
        // Mix of row hits and a conflict so banks/queue/in-service are all
        // populated mid-flight.
        for i in 0..6u64 {
            ch.enqueue(req(i, i * 128), map.decode(i * 128), 0).unwrap();
        }
        ch.enqueue(req(99, 8 * 32 * 128), map.decode(8 * 32 * 128), 0)
            .unwrap();
        for c in 0..10 {
            ch.tick(c);
            ch.pop_finished(c);
        }

        let mut w = SnapWriter::new();
        Snapshot::snapshot(&ch, &mut w);
        let enc = w.into_bytes();

        let (mut twin, _) = channel();
        let mut r = SnapReader::new(&enc);
        Restore::restore(&mut twin, &mut r).unwrap();
        r.finish().unwrap();

        // Both channels must now produce byte-identical futures.
        let (resp_a, end_a) = run_until_idle(&mut ch, 10);
        let (resp_b, end_b) = run_until_idle(&mut twin, 10);
        assert_eq!(resp_a, resp_b);
        assert_eq!(end_a, end_b);
        assert_eq!(ch.stats().serviced, twin.stats().serviced);
        assert_eq!(ch.stats().activations, twin.stats().activations);
        assert_eq!(ch.stats().row_hits.num, twin.stats().row_hits.num);
        assert_eq!(ch.stats().source_bytes, twin.stats().source_bytes);
    }

    #[test]
    fn snapshot_restore_rejects_wrong_geometry() {
        use emerald_common::snap::{Restore, SnapReader, SnapWriter, Snapshot};
        let (ch, _) = channel();
        let mut w = SnapWriter::new();
        Snapshot::snapshot(&ch, &mut w);
        let enc = w.into_bytes();
        let half_banks = DramConfig {
            banks: 4,
            ..DramConfig::lpddr3_1333()
        };
        let mut other = DramChannel::new(half_banks, Box::new(FrFcfs::new()));
        let mut r = SnapReader::new(&enc);
        assert!(Restore::restore(&mut other, &mut r).is_err());
    }

    #[test]
    fn simultaneous_completions_share_one_wake() {
        use emerald_common::event::{earliest, NextEvent};
        let (mut a, map) = channel();
        let (mut b, _) = channel();
        a.enqueue(req(1, 0x1000), map.decode(0x1000), 0).unwrap();
        b.enqueue(req(2, 0x1000), map.decode(0x1000), 0).unwrap();
        a.tick(0);
        b.tick(0);
        // Identical requests on identical channels complete at the same
        // cycle, so the combined wake is a single shared event.
        let ta = NextEvent::next_event(&a, 0).unwrap();
        let tb = NextEvent::next_event(&b, 0).unwrap();
        assert_eq!(ta, tb);
        let wake = earliest(NextEvent::next_event(&a, 0), NextEvent::next_event(&b, 0)).unwrap();
        for c in 1..wake {
            a.tick(c);
            b.tick(c);
            assert!(a.pop_finished(c).is_empty() && b.pop_finished(c).is_empty());
        }
        a.tick(wake);
        b.tick(wake);
        assert_eq!(
            a.pop_finished(wake).len() + b.pop_finished(wake).len(),
            2,
            "both components act at the shared wake cycle"
        );
    }
}
