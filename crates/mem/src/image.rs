//! Functional backing store: the simulated physical memory contents.
//!
//! Emerald splits *functional* execution (what values memory holds) from
//! *timing* (when accesses complete). [`MemImage`] is the functional half:
//! a flat byte array with a bump allocator that the scene loader, shader
//! executor, display controller and CPU model all read and write directly,
//! while the timing half replays the same addresses through caches and DRAM.

use emerald_common::snap::{SnapError, SnapReader, SnapWriter};
use emerald_common::types::Addr;
use std::sync::{Arc, RwLock, RwLockReadGuard};

/// Simulated physical memory with a bump allocator.
#[derive(Debug, Clone)]
pub struct MemImage {
    data: Vec<u8>,
    next: Addr,
}

impl MemImage {
    /// Creates an image of `capacity` bytes. Allocation starts at a small
    /// non-zero offset so that address 0 stays an obvious "null".
    pub fn new(capacity: usize) -> Self {
        Self {
            data: vec![0; capacity],
            next: 256,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Bytes allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }

    /// Allocates `size` bytes aligned to `align` (power of two); returns the
    /// base address.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or the image is exhausted.
    pub fn alloc(&mut self, size: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (self.next + align - 1) & !(align - 1);
        assert!(
            (base + size) as usize <= self.data.len(),
            "memory image exhausted: need {} more bytes",
            base + size - self.data.len() as u64
        );
        self.next = base + size;
        base
    }

    /// Reads a little-endian `u32`. Out-of-range reads return 0 (useful for
    /// speculative/masked lanes).
    pub fn read_u32(&self, addr: Addr) -> u32 {
        let i = addr as usize;
        if i + 4 > self.data.len() {
            return 0;
        }
        u32::from_le_bytes([
            self.data[i],
            self.data[i + 1],
            self.data[i + 2],
            self.data[i + 3],
        ])
    }

    /// Writes a little-endian `u32`; out-of-range writes are ignored.
    pub fn write_u32(&mut self, addr: Addr, value: u32) {
        let i = addr as usize;
        if i + 4 > self.data.len() {
            return;
        }
        self.data[i..i + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads an `f32` stored by [`MemImage::write_f32`].
    pub fn read_f32(&self, addr: Addr) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32` as its bit pattern.
    pub fn write_f32(&mut self, addr: Addr, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Copies a byte slice into memory at `addr` (clipped to capacity).
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        let i = addr as usize;
        let end = (i + bytes.len()).min(self.data.len());
        if i < end {
            self.data[i..end].copy_from_slice(&bytes[..end - i]);
        }
    }

    /// Borrows `len` bytes starting at `addr` (clipped to capacity).
    pub fn read_bytes(&self, addr: Addr, len: usize) -> &[u8] {
        let i = (addr as usize).min(self.data.len());
        let end = (i + len).min(self.data.len());
        &self.data[i..end]
    }

    /// Compares `len` bytes at `base` against the same range of `other`,
    /// returning at most `max` mismatches as `(addr, self_byte,
    /// other_byte)`. A differential-testing hook: the conformance suite
    /// diffs the timing model's memory image against the reference walk's
    /// and wants the first divergent addresses, not a bool.
    pub fn diff_region(
        &self,
        other: &MemImage,
        base: Addr,
        len: usize,
        max: usize,
    ) -> Vec<(Addr, u8, u8)> {
        let a = self.read_bytes(base, len);
        let b = other.read_bytes(base, len);
        let mut out = Vec::new();
        for i in 0..a.len().max(b.len()) {
            if out.len() >= max {
                break;
            }
            let (x, y) = (
                a.get(i).copied().unwrap_or(0),
                b.get(i).copied().unwrap_or(0),
            );
            if x != y {
                out.push((base + i as Addr, x, y));
            }
        }
        out
    }
}

impl emerald_common::snap::Snapshot for MemImage {
    /// Serializes the allocator cursor and the allocated byte range
    /// `[0, next)`. Bytes beyond `next` are never handed out by the bump
    /// allocator and stay zero in any run, so they are omitted; restore
    /// re-zeroes the target's own allocated tail where the snapshot's
    /// coverage ends.
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_usize(self.data.len());
        w.put_u64(self.next);
        w.put_bytes(&self.data[..self.next as usize]);
    }
}

impl emerald_common::snap::Restore for MemImage {
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let capacity = r.get_usize()?;
        if capacity != self.data.len() {
            return Err(SnapError::BadValue {
                what: "memory image capacity mismatch",
            });
        }
        let next = r.get_u64()?;
        if next as usize > self.data.len() {
            return Err(SnapError::BadValue {
                what: "memory image allocator cursor beyond capacity",
            });
        }
        let bytes = r.get_bytes()?;
        if bytes.len() != next as usize {
            return Err(SnapError::BadValue {
                what: "memory image byte count disagrees with cursor",
            });
        }
        // Bytes past the bump cursor are zero in any image (the
        // allocator never hands them out), so only the tail this image
        // had already allocated needs re-zeroing — zeroing to capacity
        // would touch every page of a multi-hundred-MiB image and
        // dominate the restore.
        let dirty = self.next as usize;
        if dirty > bytes.len() {
            self.data[bytes.len()..dirty].fill(0);
        }
        self.data[..bytes.len()].copy_from_slice(bytes);
        self.next = next;
        Ok(())
    }
}

/// Shared handle to a [`MemImage`], cloned by every component that needs
/// functional memory access.
///
/// The handle is `Arc<RwLock<…>>` so that the bulk-synchronous parallel
/// core phase (see `emerald-gpu`) can hold one read guard per simulated
/// cycle while worker threads execute against the frozen image. All
/// sequential host code keeps using the closure API below, which takes and
/// releases the lock per call — uncontended, that is a few nanoseconds.
#[derive(Debug, Clone)]
pub struct SharedMem(Arc<RwLock<MemImage>>);

/// A read guard over the shared image, held for the duration of one
/// parallel core-execution phase. Derefs to [`MemImage`].
pub type MemReadGuard<'a> = RwLockReadGuard<'a, MemImage>;

impl SharedMem {
    /// Wraps an image in a shared handle.
    pub fn new(image: MemImage) -> Self {
        Self(Arc::new(RwLock::new(image)))
    }

    /// Creates a shared image of `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::new(MemImage::new(capacity))
    }

    /// Runs `f` with immutable access to the image.
    pub fn read<R>(&self, f: impl FnOnce(&MemImage) -> R) -> R {
        f(&self.0.read().unwrap())
    }

    /// Runs `f` with mutable access to the image.
    pub fn write<R>(&self, f: impl FnOnce(&mut MemImage) -> R) -> R {
        f(&mut self.0.write().unwrap())
    }

    /// Acquires a read guard that freezes the image for a whole parallel
    /// phase. While the guard lives, `write`/`alloc`/`write_u32`/… on any
    /// clone of this handle will block — callers must drop the guard
    /// before the commit phase.
    pub fn read_guard(&self) -> MemReadGuard<'_> {
        self.0.read().unwrap()
    }

    /// Convenience: allocates from the shared image.
    pub fn alloc(&self, size: u64, align: u64) -> Addr {
        self.write(|m| m.alloc(size, align))
    }

    /// Convenience: reads a `u32`.
    pub fn read_u32(&self, addr: Addr) -> u32 {
        self.read(|m| m.read_u32(addr))
    }

    /// Convenience: writes a `u32`.
    pub fn write_u32(&self, addr: Addr, value: u32) {
        self.write(|m| m.write_u32(addr, value));
    }

    /// Convenience: reads an `f32`.
    pub fn read_f32(&self, addr: Addr) -> f32 {
        self.read(|m| m.read_f32(addr))
    }

    /// Convenience: diffs a byte range against another image (see
    /// [`MemImage::diff_region`]).
    pub fn diff_region(
        &self,
        other: &SharedMem,
        base: Addr,
        len: usize,
        max: usize,
    ) -> Vec<(Addr, u8, u8)> {
        self.read(|a| other.read(|b| a.diff_region(b, base, len, max)))
    }

    /// Convenience: writes an `f32`.
    pub fn write_f32(&self, addr: Addr, value: f32) {
        self.write(|m| m.write_f32(addr, value));
    }
}

impl emerald_common::snap::Snapshot for SharedMem {
    fn snapshot(&self, w: &mut SnapWriter) {
        self.read(|m| m.snapshot(w));
    }
}

impl emerald_common::snap::Restore for SharedMem {
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.write(|m| m.restore(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emerald_common::snap::{Restore, Snapshot};

    #[test]
    fn alloc_respects_alignment() {
        let mut m = MemImage::new(1 << 16);
        let a = m.alloc(10, 4);
        assert_eq!(a % 4, 0);
        let b = m.alloc(1, 128);
        assert_eq!(b % 128, 0);
        assert!(b > a);
    }

    #[test]
    fn u32_roundtrip_and_oob() {
        let mut m = MemImage::new(64);
        m.write_u32(8, 0xdead_beef);
        assert_eq!(m.read_u32(8), 0xdead_beef);
        assert_eq!(m.read_u32(1000), 0);
        m.write_u32(1000, 1); // ignored
        assert_eq!(m.read_u32(60), 0);
    }

    #[test]
    fn f32_roundtrip() {
        let mut m = MemImage::new(64);
        m.write_f32(0, -2.5);
        assert_eq!(m.read_f32(0), -2.5);
    }

    #[test]
    fn byte_slices() {
        let mut m = MemImage::new(16);
        m.write_bytes(4, &[1, 2, 3]);
        assert_eq!(m.read_bytes(4, 3), &[1, 2, 3]);
        // Clipped at capacity.
        m.write_bytes(14, &[9, 9, 9]);
        assert_eq!(m.read_bytes(14, 10), &[9, 9]);
    }

    #[test]
    fn diff_region_finds_and_caps_mismatches() {
        let mut a = MemImage::new(64);
        let mut b = MemImage::new(64);
        a.write_bytes(8, &[1, 2, 3, 4]);
        b.write_bytes(8, &[1, 9, 3, 7]);
        assert_eq!(a.diff_region(&b, 8, 4, 16), vec![(9, 2, 9), (11, 4, 7)]);
        assert_eq!(a.diff_region(&b, 8, 4, 1), vec![(9, 2, 9)]);
        assert!(a.diff_region(&b, 0, 8, 16).is_empty());
        // Ranges past one image's capacity compare against implicit zeros.
        let c = MemImage::new(16);
        let mut d = MemImage::new(32);
        d.write_bytes(20, &[5]);
        assert_eq!(c.diff_region(&d, 16, 8, 16), vec![(20, 0, 5)]);
        // SharedMem wrapper delegates.
        let sa = SharedMem::new(a);
        let sb = SharedMem::new(b);
        assert_eq!(sa.diff_region(&sb, 8, 4, 1), vec![(9, 2, 9)]);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn alloc_exhaustion_panics() {
        let mut m = MemImage::new(512);
        m.alloc(1024, 4);
    }

    #[test]
    fn snapshot_round_trip_restores_contents_and_allocator() {
        let mut a = MemImage::new(1024);
        let base = a.alloc(64, 16);
        a.write_u32(base, 0xDEAD_BEEF);
        let mut w = SnapWriter::new();
        a.snapshot(&mut w);
        let enc = w.into_bytes();

        let mut b = MemImage::new(1024);
        // Stale dirt in a region the target had allocated but the
        // snapshot does not cover — must be re-zeroed on restore.
        let dirt = b.alloc(600, 16) + 500;
        b.write_u32(dirt, 7);
        let mut r = SnapReader::new(&enc);
        b.restore(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(b.read_u32(base), 0xDEAD_BEEF);
        assert_eq!(b.allocated(), a.allocated());
        assert_eq!(
            b.read_u32(dirt),
            0,
            "allocated tail past the snapshot is zeroed"
        );
        // The restored allocator reproduces the straight run's addresses.
        assert_eq!(a.alloc(8, 8), b.alloc(8, 8));

        // Restoring into a different-capacity image is a typed error.
        let mut c = MemImage::new(512);
        let mut r = SnapReader::new(&enc);
        assert!(matches!(c.restore(&mut r), Err(SnapError::BadValue { .. })));
    }

    #[test]
    fn shared_mem_is_really_shared() {
        let s1 = SharedMem::with_capacity(1024);
        let s2 = s1.clone();
        s1.write_u32(300, 77);
        assert_eq!(s2.read_u32(300), 77);
        let a = s2.alloc(16, 16);
        assert!(a >= 256);
    }
}
