//! Fixed-latency, bounded-bandwidth links.
//!
//! The SoC "system network" and the GPU-internal connections are modeled as
//! point-to-point links with a transfer latency and a per-cycle issue limit
//! — the abstraction level of gem5's classic (non-Ruby) interconnect, which
//! the paper deliberately chooses for simulation speed (§2).

use emerald_common::snap::{SnapError, SnapReader, SnapWriter};
use emerald_common::types::Cycle;
use std::collections::VecDeque;

/// A delay line carrying `T` with latency and bandwidth limits.
#[derive(Debug, Clone)]
pub struct Link<T> {
    latency: Cycle,
    per_cycle: usize,
    capacity: usize,
    in_flight: VecDeque<(Cycle, T)>,
    issued_at: Cycle,
    issued_count: usize,
    /// Total items ever accepted.
    pub accepted: u64,
    /// Pushes rejected due to bandwidth or capacity.
    pub rejected: u64,
}

impl<T> Link<T> {
    /// Creates a link with `latency` cycles of delay, at most `per_cycle`
    /// accepted items per cycle, and `capacity` items buffered in flight.
    ///
    /// # Panics
    ///
    /// Panics if `per_cycle == 0` or `capacity == 0`.
    pub fn new(latency: Cycle, per_cycle: usize, capacity: usize) -> Self {
        assert!(per_cycle > 0 && capacity > 0);
        Self {
            latency,
            per_cycle,
            capacity,
            in_flight: VecDeque::new(),
            issued_at: Cycle::MAX,
            issued_count: 0,
            accepted: 0,
            rejected: 0,
        }
    }

    /// Attempts to send `item` at `now`; fails (returning the item) when
    /// the per-cycle bandwidth or buffering capacity is exhausted.
    pub fn push(&mut self, now: Cycle, item: T) -> Result<(), T> {
        if self.issued_at != now {
            self.issued_at = now;
            self.issued_count = 0;
        }
        if self.issued_count >= self.per_cycle || self.in_flight.len() >= self.capacity {
            self.rejected += 1;
            return Err(item);
        }
        self.issued_count += 1;
        self.accepted += 1;
        self.in_flight.push_back((now + self.latency, item));
        Ok(())
    }

    /// Pops the next item whose delivery time has arrived.
    pub fn pop(&mut self, now: Cycle) -> Option<T> {
        if self.in_flight.front().is_some_and(|(t, _)| *t <= now) {
            self.in_flight.pop_front().map(|(_, v)| v)
        } else {
            None
        }
    }

    /// Items currently in flight.
    pub fn len(&self) -> usize {
        self.in_flight.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Configured latency.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Serializes the link's counters. Checkpoints are taken at drained
    /// boundaries, so the payload queue must be empty — only the issue
    /// window and accept/reject accounting carry across.
    ///
    /// # Panics
    ///
    /// Panics if items are still in flight (a checkpoint-placement bug,
    /// not a data error).
    pub fn snapshot_drained(&self, w: &mut SnapWriter) {
        assert!(
            self.in_flight.is_empty(),
            "link must be drained at a checkpoint"
        );
        w.put_u64(self.issued_at);
        w.put_usize(self.issued_count);
        w.put_u64(self.accepted);
        w.put_u64(self.rejected);
    }

    /// Restores counters written by [`Link::snapshot_drained`] and clears
    /// any in-flight payload.
    pub fn restore_drained(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.issued_at = r.get_u64()?;
        self.issued_count = r.get_usize()?;
        self.accepted = r.get_u64()?;
        self.rejected = r.get_u64()?;
        self.in_flight.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_after_latency() {
        let mut l = Link::new(5, 1, 8);
        l.push(10, "x").unwrap();
        assert_eq!(l.pop(14), None);
        assert_eq!(l.pop(15), Some("x"));
        assert_eq!(l.pop(16), None);
    }

    #[test]
    fn per_cycle_bandwidth_enforced() {
        let mut l = Link::new(1, 2, 8);
        assert!(l.push(0, 1).is_ok());
        assert!(l.push(0, 2).is_ok());
        assert_eq!(l.push(0, 3), Err(3));
        // Next cycle the budget resets.
        assert!(l.push(1, 3).is_ok());
        assert_eq!(l.rejected, 1);
        assert_eq!(l.accepted, 3);
    }

    #[test]
    fn capacity_enforced() {
        let mut l = Link::new(100, 10, 2);
        assert!(l.push(0, 1).is_ok());
        assert!(l.push(0, 2).is_ok());
        assert_eq!(l.push(1, 3), Err(3));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn drained_snapshot_round_trips_counters() {
        let mut l = Link::new(5, 1, 8);
        l.push(10, 1u32).unwrap();
        assert_eq!(l.push(10, 2), Err(2));
        assert_eq!(l.pop(15), Some(1));
        let mut w = SnapWriter::new();
        l.snapshot_drained(&mut w);
        let enc = w.into_bytes();

        let mut fresh = Link::new(5, 1, 8);
        let mut r = SnapReader::new(&enc);
        fresh.restore_drained(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(fresh.accepted, 1);
        assert_eq!(fresh.rejected, 1);
        // The restored link keeps enforcing bandwidth from the next cycle.
        assert!(fresh.push(16, 3).is_ok());
        assert_eq!(fresh.push(16, 4), Err(4));
    }

    #[test]
    fn fifo_delivery_order() {
        let mut l = Link::new(2, 4, 8);
        for i in 0..3 {
            l.push(0, i).unwrap();
        }
        assert_eq!(l.pop(2), Some(0));
        assert_eq!(l.pop(2), Some(1));
        assert_eq!(l.pop(2), Some(2));
        assert!(l.is_empty());
    }
}
