//! Memory requests and responses exchanged between hierarchy levels.

use emerald_common::snap::{SnapError, SnapReader, SnapWriter};
use emerald_common::types::{AccessKind, Addr, Cycle, TrafficSource};

/// Globally unique request identifier.
pub type ReqId = u64;

/// A cache-line-granularity memory request traveling down the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Unique id used to match responses to requesters.
    pub id: ReqId,
    /// Line-aligned byte address.
    pub addr: Addr,
    /// Transfer size in bytes (normally one cache line).
    pub bytes: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// Originating SoC agent (CPU core, GPU, display…).
    pub source: TrafficSource,
    /// Cycle the request entered the memory system (for latency stats).
    pub issued: Cycle,
}

/// A completed memory access returning up the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// The id of the request this answers.
    pub id: ReqId,
    /// Line-aligned byte address.
    pub addr: Addr,
    /// Transfer size in bytes.
    pub bytes: u32,
    /// Read or write (writes complete silently for requesters, but the
    /// completion still carries bandwidth accounting).
    pub kind: AccessKind,
    /// Originating agent, echoed back for routing.
    pub source: TrafficSource,
    /// Cycle the access completed at DRAM (or the level that satisfied it).
    pub finished: Cycle,
}

impl MemRequest {
    /// Builds the response corresponding to this request.
    pub fn response(&self, finished: Cycle) -> MemResponse {
        MemResponse {
            id: self.id,
            addr: self.addr,
            bytes: self.bytes,
            kind: self.kind,
            source: self.source,
            finished,
        }
    }

    /// True for reads (which need a response delivered to the requester).
    pub fn needs_response(&self) -> bool {
        self.kind == AccessKind::Read
    }

    /// Encodes every field for a snapshot.
    pub fn snap_write(&self, w: &mut SnapWriter) {
        w.put_u64(self.id);
        w.put_u64(self.addr);
        w.put_u32(self.bytes);
        self.kind.snap_write(w);
        self.source.snap_write(w);
        w.put_u64(self.issued);
    }

    /// Decodes a request written by [`MemRequest::snap_write`].
    pub fn snap_read(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Self {
            id: r.get_u64()?,
            addr: r.get_u64()?,
            bytes: r.get_u32()?,
            kind: AccessKind::snap_read(r)?,
            source: TrafficSource::snap_read(r)?,
            issued: r.get_u64()?,
        })
    }
}

impl MemResponse {
    /// Encodes every field for a snapshot.
    pub fn snap_write(&self, w: &mut SnapWriter) {
        w.put_u64(self.id);
        w.put_u64(self.addr);
        w.put_u32(self.bytes);
        self.kind.snap_write(w);
        self.source.snap_write(w);
        w.put_u64(self.finished);
    }

    /// Decodes a response written by [`MemResponse::snap_write`].
    pub fn snap_read(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Self {
            id: r.get_u64()?,
            addr: r.get_u64()?,
            bytes: r.get_u32()?,
            kind: AccessKind::snap_read(r)?,
            source: TrafficSource::snap_read(r)?,
            finished: r.get_u64()?,
        })
    }
}

/// Monotonic generator for [`ReqId`]s.
#[derive(Debug, Default, Clone)]
pub struct ReqIdGen {
    next: ReqId,
}

impl ReqIdGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh id.
    pub fn next_id(&mut self) -> ReqId {
        let id = self.next;
        self.next += 1;
        id
    }
}

impl emerald_common::snap::Snapshot for ReqIdGen {
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_u64(self.next);
    }
}

impl emerald_common::snap::Restore for ReqIdGen {
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.next = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_echoes_request() {
        let r = MemRequest {
            id: 42,
            addr: 0x1000,
            bytes: 128,
            kind: AccessKind::Read,
            source: TrafficSource::Gpu,
            issued: 10,
        };
        let resp = r.response(99);
        assert_eq!(resp.id, 42);
        assert_eq!(resp.addr, 0x1000);
        assert_eq!(resp.finished, 99);
        assert!(r.needs_response());
        let w = MemRequest {
            kind: AccessKind::Write,
            ..r
        };
        assert!(!w.needs_response());
    }

    #[test]
    fn id_gen_is_monotonic() {
        let mut g = ReqIdGen::new();
        let a = g.next_id();
        let b = g.next_id();
        assert!(b > a);
    }
}
