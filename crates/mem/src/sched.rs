//! DRAM scheduling: the scheduler trait and the FR-FCFS baseline.

use crate::mapping::DramLocation;
use crate::req::MemRequest;
use emerald_common::types::Cycle;
use std::fmt;

/// A request waiting in a channel's scheduling queue.
#[derive(Debug, Clone, Copy)]
pub struct QueuedReq {
    /// The request itself.
    pub req: MemRequest,
    /// Its decoded DRAM coordinates.
    pub loc: DramLocation,
    /// Cycle it entered this channel's queue.
    pub arrived: Cycle,
}

/// Snapshot of one bank's row-buffer state, given to schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankState {
    /// Currently open row, if any.
    pub open_row: Option<u64>,
    /// Cycle at which the bank can accept a new command.
    pub ready_at: Cycle,
}

impl BankState {
    /// A closed, idle bank.
    pub fn idle() -> Self {
        Self {
            open_row: None,
            ready_at: 0,
        }
    }
}

/// Flat bank index for a location, given `banks_per_rank`.
pub fn bank_index(loc: &DramLocation, banks_per_rank: usize) -> usize {
    loc.rank * banks_per_rank + loc.bank
}

/// A DRAM request scheduler for one channel.
///
/// Implementations see the whole queue plus bank states and return the
/// index of the request to issue this cycle.
pub trait DramScheduler: fmt::Debug + Send {
    /// Picks the queue index to service next, or `None` to idle.
    fn pick(
        &mut self,
        queue: &[QueuedReq],
        banks: &[BankState],
        banks_per_rank: usize,
        now: Cycle,
    ) -> Option<usize>;

    /// Notification that `req` was serviced (`row_hit` tells whether it hit
    /// the open row). Default: ignored.
    fn on_service(&mut self, req: &MemRequest, row_hit: bool, now: Cycle) {
        let _ = (req, row_hit, now);
    }

    /// Per-cycle housekeeping (quantum/window rollovers). Default: none.
    fn tick(&mut self, now: Cycle) {
        let _ = now;
    }

    /// Earliest cycle `> now` at which [`DramScheduler::tick`] does
    /// something even with an empty queue (quantum/window rollovers), or
    /// `None` when ticking an idle channel is a no-op. Part of the
    /// `emerald_common::event::NextEvent` contract: returning a cycle
    /// *later* than the true rollover would let the event-driven clock
    /// skip over it and diverge from the reference clocking. Default:
    /// no housekeeping, hence no events.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let _ = now;
        None
    }
}

/// First-Ready, First-Come-First-Served: prefer the oldest row-buffer hit;
/// otherwise the oldest request. The baseline scheduler of Table 4.
#[derive(Debug, Default, Clone)]
pub struct FrFcfs;

impl FrFcfs {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self
    }

    /// FR-FCFS selection among an arbitrary candidate subset, reused by
    /// DASH within each priority class. `candidates` holds queue indices.
    pub fn pick_among(
        queue: &[QueuedReq],
        banks: &[BankState],
        banks_per_rank: usize,
        candidates: &[usize],
    ) -> Option<usize> {
        // Oldest row hit first.
        let mut best_hit: Option<usize> = None;
        let mut best_any: Option<usize> = None;
        for &i in candidates {
            let q = &queue[i];
            let b = &banks[bank_index(&q.loc, banks_per_rank)];
            let hit = b.open_row == Some(q.loc.row);
            if hit {
                best_hit = match best_hit {
                    None => Some(i),
                    Some(j) if queue[i].arrived < queue[j].arrived => Some(i),
                    j => j,
                };
            }
            best_any = match best_any {
                None => Some(i),
                Some(j) if queue[i].arrived < queue[j].arrived => Some(i),
                j => j,
            };
        }
        best_hit.or(best_any)
    }
}

impl DramScheduler for FrFcfs {
    fn pick(
        &mut self,
        queue: &[QueuedReq],
        banks: &[BankState],
        banks_per_rank: usize,
        _now: Cycle,
    ) -> Option<usize> {
        let candidates: Vec<usize> = (0..queue.len()).collect();
        Self::pick_among(queue, banks, banks_per_rank, &candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emerald_common::types::{AccessKind, TrafficSource};

    fn qr(id: u64, bank: usize, row: u64, arrived: Cycle) -> QueuedReq {
        QueuedReq {
            req: MemRequest {
                id,
                addr: 0,
                bytes: 128,
                kind: AccessKind::Read,
                source: TrafficSource::Gpu,
                issued: arrived,
            },
            loc: DramLocation {
                channel: 0,
                rank: 0,
                bank,
                row,
                col: 0,
            },
            arrived,
        }
    }

    #[test]
    fn prefers_row_hit_over_older_miss() {
        let mut banks = vec![BankState::idle(); 8];
        banks[2].open_row = Some(7);
        let queue = vec![qr(1, 0, 5, 0), qr(2, 2, 7, 10)];
        let mut s = FrFcfs::new();
        assert_eq!(s.pick(&queue, &banks, 8, 20), Some(1));
    }

    #[test]
    fn falls_back_to_oldest() {
        let banks = vec![BankState::idle(); 8];
        let queue = vec![qr(1, 0, 5, 3), qr(2, 1, 7, 1)];
        let mut s = FrFcfs::new();
        assert_eq!(s.pick(&queue, &banks, 8, 20), Some(1));
    }

    #[test]
    fn oldest_among_multiple_hits() {
        let mut banks = vec![BankState::idle(); 8];
        banks[0].open_row = Some(1);
        banks[1].open_row = Some(2);
        let queue = vec![qr(1, 0, 1, 9), qr(2, 1, 2, 4)];
        let mut s = FrFcfs::new();
        assert_eq!(s.pick(&queue, &banks, 8, 20), Some(1));
    }

    #[test]
    fn empty_queue_idles() {
        let banks = vec![BankState::idle(); 8];
        let mut s = FrFcfs::new();
        assert_eq!(s.pick(&[], &banks, 8, 0), None);
    }
}
