//! Memory-system substrate for Emerald-rs.
//!
//! Emerald's case study I (ISCA 2019, §5) re-evaluates two SoC memory
//! proposals — the DASH deadline-aware scheduler and the HMC heterogeneous
//! memory controller — under execution-driven simulation. This crate
//! provides everything those experiments need, plus the cache hierarchy the
//! GPU model is built from:
//!
//! * [`image`] — the functional backing store (simulated physical memory)
//!   holding vertex buffers, textures, framebuffers and GPGPU data.
//! * [`req`] — tagged memory requests/responses ([`TrafficSource`] tags are
//!   what heterogeneous SoC schedulers schedule by).
//! * [`cache`] — set-associative write-back caches with MSHRs.
//! * [`mapping`] — DRAM address mappings (Table 4: row-striped for
//!   locality, bank-striped for parallelism).
//! * [`dram`] — multi-channel DRAM with banks, row buffers and a data bus.
//! * [`sched`] — the scheduler trait and FR-FCFS baseline.
//! * [`dash`] — the DASH deadline-aware scheduler with TCM clustering
//!   (both the DCB and DTB clustering variants studied in the paper).
//! * [`system`] — the memory system façade: channel steering (interleaved
//!   vs. HMC source-partitioned), per-channel schedulers, statistics.
//! * [`link`] — fixed-latency, bounded-bandwidth links (NoC edges).
//! * [`view`] — frozen-image views and per-core store buffers for the
//!   bulk-synchronous parallel core phase.
//!
//! [`TrafficSource`]: emerald_common::types::TrafficSource

#![warn(missing_docs)]

pub mod cache;
pub mod dash;
pub mod dram;
pub mod image;
pub mod link;
pub mod mapping;
pub mod req;
pub mod sched;
pub mod system;
pub mod view;

pub use cache::{Cache, CacheConfig};
pub use dram::{DramChannel, DramConfig};
pub use image::{MemImage, MemReadGuard, SharedMem};
pub use link::Link;
pub use mapping::{AddressMapping, MappingScheme};
pub use req::{MemRequest, MemResponse, ReqId};
pub use system::{MemorySystem, MemorySystemConfig, Steering};
pub use view::{FuncMem, ImageView, StoreBuffer, WClass};
