//! Deferred-write views over the functional image.
//!
//! The bulk-synchronous parallel core phase (see `emerald-gpu`) executes
//! every SIMT core against a *frozen* [`MemImage`] snapshot. Stores made
//! during the phase cannot touch the image directly — that would make the
//! result depend on thread scheduling — so each core writes into a private
//! [`StoreBuffer`] instead, and reads check that buffer first so a core
//! always sees its own writes. After the phase, buffers are drained into
//! the image in core-index order, which makes the merged result identical
//! no matter how cores were sharded across host threads.
//!
//! [`FuncMem`] abstracts "functional u32/f32 memory" so execution contexts
//! can be written once and run either directly against [`SharedMem`]
//! (sequential host code) or against an [`ImageView`] (parallel phase).

use crate::image::{MemImage, SharedMem};
use emerald_common::hash::FxHashMap;
use emerald_common::types::Addr;

/// Which backing store a deferred write targets. The GPU keeps its
/// shared-scratch space outside the memory image, so store buffers tag
/// every entry with the destination class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WClass {
    /// The global memory image ([`MemImage`]).
    Image,
    /// The GPU's shared-memory scratch space.
    Scratch,
}

/// Below this many buffered writes, read-your-own-writes lookups scan the
/// write log backwards (newest wins) instead of consulting a hash map.
/// Typical cycles buffer a handful of stores, where a short linear probe
/// beats any hashing; heavy cycles (fragment bursts) cross the threshold
/// once and use the map from then on.
const SMALL_SCAN: usize = 16;

/// A private write-combining buffer for one core's stores during a
/// parallel phase.
///
/// Writes are kept in program order (`writes`, replayed verbatim at
/// commit so later stores win exactly as they would have sequentially).
/// Read-your-own-writes lookups use a small-buffer backward linear scan;
/// once the log outgrows [`SMALL_SCAN`] entries, a coalescing
/// [`FxHashMap`] takes over for O(1) lookup. Both the log and the map
/// keep their capacity across `drain` calls, so steady-state cycles never
/// reallocate.
#[derive(Debug, Default)]
pub struct StoreBuffer {
    writes: Vec<(WClass, Addr, u32)>,
    latest: FxHashMap<(WClass, Addr), u32>,
    /// Generic side channel for per-core functional counters gathered
    /// during the phase (e.g. z-test pass/fail tallies); merged by
    /// summation at commit, so the total is thread-count-invariant.
    pub aux: [u64; 8],
}

impl StoreBuffer {
    /// Records a deferred write.
    pub fn push(&mut self, class: WClass, addr: Addr, value: u32) {
        self.writes.push((class, addr, value));
        let n = self.writes.len();
        if n == SMALL_SCAN + 1 {
            // The log just outgrew the linear-scan fast path: build the
            // coalescing map from the whole log (later entries win).
            for &(c, a, v) in &self.writes {
                self.latest.insert((c, a), v);
            }
        } else if n > SMALL_SCAN + 1 {
            self.latest.insert((class, addr), value);
        }
    }

    /// Latest value this buffer holds for `addr` in `class`, if any.
    pub fn lookup(&self, class: WClass, addr: Addr) -> Option<u32> {
        if self.writes.len() <= SMALL_SCAN {
            return self
                .writes
                .iter()
                .rev()
                .find(|&&(c, a, _)| c == class && a == addr)
                .map(|&(_, _, v)| v);
        }
        self.latest.get(&(class, addr)).copied()
    }

    /// True when no writes are buffered.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// Number of buffered writes.
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// Drains every buffered write, in program order, into `f`.
    pub fn drain(&mut self, mut f: impl FnMut(WClass, Addr, u32)) {
        for (class, addr, value) in self.writes.drain(..) {
            f(class, addr, value);
        }
        self.latest.clear();
    }

    /// Takes and zeroes the aux counters.
    pub fn take_aux(&mut self) -> [u64; 8] {
        std::mem::take(&mut self.aux)
    }
}

/// Functional u32/f32 memory access, implemented by both the live
/// [`SharedMem`] handle and the frozen [`ImageView`].
pub trait FuncMem {
    /// Reads a little-endian `u32` (0 when out of range).
    fn read_u32(&mut self, addr: Addr) -> u32;
    /// Writes a little-endian `u32` (ignored when out of range).
    fn write_u32(&mut self, addr: Addr, value: u32);
    /// Reads an `f32` bit pattern.
    fn read_f32(&mut self, addr: Addr) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }
    /// Writes an `f32` bit pattern.
    fn write_f32(&mut self, addr: Addr, value: f32) {
        self.write_u32(addr, value.to_bits());
    }
}

impl FuncMem for SharedMem {
    fn read_u32(&mut self, addr: Addr) -> u32 {
        SharedMem::read_u32(self, addr)
    }
    fn write_u32(&mut self, addr: Addr, value: u32) {
        SharedMem::write_u32(self, addr, value);
    }
}

/// One core's window onto the frozen image during a parallel phase:
/// reads see the snapshot overlaid with the core's own buffered writes;
/// writes go into the store buffer.
#[derive(Debug)]
pub struct ImageView<'a> {
    img: &'a MemImage,
    buf: &'a mut StoreBuffer,
}

impl<'a> ImageView<'a> {
    /// Builds a view over `img` with `buf` as the private store buffer.
    pub fn new(img: &'a MemImage, buf: &'a mut StoreBuffer) -> Self {
        Self { img, buf }
    }

    /// The underlying store buffer (e.g. to stash aux counters).
    pub fn buf_mut(&mut self) -> &mut StoreBuffer {
        self.buf
    }
}

impl FuncMem for ImageView<'_> {
    fn read_u32(&mut self, addr: Addr) -> u32 {
        match self.buf.lookup(WClass::Image, addr) {
            Some(v) => v,
            None => self.img.read_u32(addr),
        }
    }
    fn write_u32(&mut self, addr: Addr, value: u32) {
        self.buf.push(WClass::Image, addr, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_buffer_read_your_own_writes() {
        let img = MemImage::new(1024);
        let mut buf = StoreBuffer::default();
        let mut v = ImageView::new(&img, &mut buf);
        assert_eq!(v.read_u32(64), 0);
        v.write_u32(64, 7);
        v.write_u32(64, 9);
        assert_eq!(v.read_u32(64), 9, "reads must see own buffered writes");
        assert_eq!(buf.len(), 2, "program order is preserved, not coalesced");
    }

    #[test]
    fn drain_replays_in_program_order() {
        let mut img = MemImage::new(1024);
        let mut buf = StoreBuffer::default();
        buf.push(WClass::Image, 8, 1);
        buf.push(WClass::Image, 8, 2);
        let mut scratch_hits = 0;
        buf.push(WClass::Scratch, 4, 5);
        buf.drain(|class, addr, value| match class {
            WClass::Image => img.write_u32(addr, value),
            WClass::Scratch => scratch_hits += 1,
        });
        assert_eq!(img.read_u32(8), 2, "later store wins");
        assert_eq!(scratch_hits, 1);
        assert!(buf.is_empty());
        assert_eq!(buf.lookup(WClass::Image, 8), None, "lookup cleared");
    }

    #[test]
    fn aux_counters_take_and_zero() {
        let mut buf = StoreBuffer::default();
        buf.aux[0] = 3;
        assert_eq!(buf.take_aux()[0], 3);
        assert_eq!(buf.aux[0], 0);
    }
}
