//! The memory-system façade: multiple DRAM channels behind a steering
//! policy and a choice of scheduler.
//!
//! Three SoC memory organizations from case study I are expressible:
//!
//! * **BAS** — channels interleaved by address (baseline mapping), FR-FCFS.
//! * **DCB/DTB** — same organization, DASH scheduling (CPU-only or
//!   system-wide clustering bandwidth).
//! * **HMC** — channels partitioned by traffic source: CPU channels use
//!   the locality mapping, IP channels the bank-parallel mapping (Table 4).

use crate::dash::{DashConfig, DashHandle};
use crate::dram::{ChannelStats, DramChannel, DramConfig};
use crate::mapping::AddressMapping;
use crate::req::{MemRequest, MemResponse};
use crate::sched::FrFcfs;
use emerald_common::event::NextEvent;
use emerald_common::snap::{Restore, SnapError, SnapReader, SnapWriter, Snapshot};
use emerald_common::types::{Cycle, TrafficSource};
use emerald_obs::{Registry, Timeline};

/// How addresses/sources map to channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Steering {
    /// All sources share all channels; `mapping.channels` must equal the
    /// channel count.
    Interleaved {
        /// The address mapping (its channel field selects the channel).
        mapping: AddressMapping,
    },
    /// HMC: CPU traffic goes to `cpu_channels` with `cpu_mapping`, IP
    /// traffic to `ip_channels` with `ip_mapping`. Each mapping's channel
    /// count must equal its partition size.
    SourcePartitioned {
        /// Global channel ids serving CPU traffic.
        cpu_channels: Vec<usize>,
        /// Global channel ids serving IP traffic.
        ip_channels: Vec<usize>,
        /// Mapping within the CPU partition (locality-oriented).
        cpu_mapping: AddressMapping,
        /// Mapping within the IP partition (parallelism-oriented).
        ip_mapping: AddressMapping,
    },
}

/// Scheduler selection for all channels.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerKind {
    /// Baseline first-ready FCFS.
    FrFcfs,
    /// DASH with the given configuration (shared across channels).
    Dash(DashConfig),
}

/// Memory-system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySystemConfig {
    /// Number of DRAM channels.
    pub channels: usize,
    /// Per-channel DRAM parameters.
    pub dram: DramConfig,
    /// Channel steering policy.
    pub steering: Steering,
    /// Scheduler for every channel.
    pub scheduler: SchedulerKind,
}

impl MemorySystemConfig {
    /// The paper's baseline: `channels` interleaved channels, baseline
    /// mapping, FR-FCFS (Table 4, "Baseline").
    pub fn baseline(channels: usize, dram: DramConfig) -> Self {
        Self {
            channels,
            dram,
            steering: Steering::Interleaved {
                mapping: AddressMapping::baseline(channels),
            },
            scheduler: SchedulerKind::FrFcfs,
        }
    }

    /// Baseline organization with DASH scheduling (the DCB/DTB configs).
    pub fn dash(channels: usize, dram: DramConfig, dash: DashConfig) -> Self {
        Self {
            scheduler: SchedulerKind::Dash(dash),
            ..Self::baseline(channels, dram)
        }
    }

    /// HMC: first half of the channels serve the CPU (locality mapping),
    /// second half serve IPs (bank-parallel mapping), FR-FCFS (Table 4).
    ///
    /// # Panics
    ///
    /// Panics if `channels < 2`.
    pub fn hmc(channels: usize, dram: DramConfig) -> Self {
        assert!(channels >= 2, "HMC needs at least one channel per class");
        let half = channels / 2;
        let cpu_channels: Vec<usize> = (0..half).collect();
        let ip_channels: Vec<usize> = (half..channels).collect();
        Self {
            channels,
            dram,
            steering: Steering::SourcePartitioned {
                cpu_mapping: AddressMapping::baseline(cpu_channels.len()),
                ip_mapping: AddressMapping::ip_parallel(ip_channels.len()),
                cpu_channels,
                ip_channels,
            },
            scheduler: SchedulerKind::FrFcfs,
        }
    }
}

/// Coarse source classes used for bandwidth probes (Figures 10 and 14 plot
/// CPU vs GPU vs display bandwidth over time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SourceClass {
    /// Any CPU core.
    Cpu,
    /// The GPU.
    Gpu,
    /// The display controller.
    Display,
    /// Other IPs.
    Other,
}

impl SourceClass {
    /// Classifies a traffic source.
    pub fn of(source: TrafficSource) -> Self {
        match source {
            TrafficSource::Cpu(_) => SourceClass::Cpu,
            TrafficSource::Gpu => SourceClass::Gpu,
            TrafficSource::Display => SourceClass::Display,
            TrafficSource::OtherIp(_) => SourceClass::Other,
        }
    }

    /// All classes, for iteration.
    pub const ALL: [SourceClass; 4] = [
        SourceClass::Cpu,
        SourceClass::Gpu,
        SourceClass::Display,
        SourceClass::Other,
    ];
}

/// Per-class bandwidth timelines (one [`Timeline`] per [`SourceClass`]).
#[derive(Debug)]
struct Probes {
    cpu: Timeline,
    gpu: Timeline,
    display: Timeline,
    other: Timeline,
}

impl Probes {
    fn new(window: Cycle) -> Self {
        Self {
            cpu: Timeline::new(window),
            gpu: Timeline::new(window),
            display: Timeline::new(window),
            other: Timeline::new(window),
        }
    }

    fn probe(&self, class: SourceClass) -> &Timeline {
        match class {
            SourceClass::Cpu => &self.cpu,
            SourceClass::Gpu => &self.gpu,
            SourceClass::Display => &self.display,
            SourceClass::Other => &self.other,
        }
    }

    fn probe_mut(&mut self, class: SourceClass) -> &mut Timeline {
        match class {
            SourceClass::Cpu => &mut self.cpu,
            SourceClass::Gpu => &mut self.gpu,
            SourceClass::Display => &mut self.display,
            SourceClass::Other => &mut self.other,
        }
    }
}

/// The full multi-channel memory system.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MemorySystemConfig,
    channels: Vec<DramChannel>,
    dash: Option<DashHandle>,
    probes: Option<Probes>,
    trace: Option<Vec<(Cycle, MemRequest)>>,
}

impl MemorySystem {
    /// Builds the memory system described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics when the steering's mapping channel counts disagree with the
    /// partition sizes / channel count.
    pub fn new(cfg: MemorySystemConfig) -> Self {
        match &cfg.steering {
            Steering::Interleaved { mapping } => {
                assert_eq!(
                    mapping.channels, cfg.channels,
                    "interleaved mapping must span all channels"
                );
            }
            Steering::SourcePartitioned {
                cpu_channels,
                ip_channels,
                cpu_mapping,
                ip_mapping,
            } => {
                assert_eq!(cpu_mapping.channels, cpu_channels.len());
                assert_eq!(ip_mapping.channels, ip_channels.len());
                assert!(cpu_channels
                    .iter()
                    .chain(ip_channels)
                    .all(|&c| c < cfg.channels));
            }
        }
        let dash = match &cfg.scheduler {
            SchedulerKind::FrFcfs => None,
            SchedulerKind::Dash(d) => Some(DashHandle::new(d.clone())),
        };
        let channels = (0..cfg.channels)
            .map(|i| {
                let sched: Box<dyn crate::sched::DramScheduler> = match (&cfg.scheduler, &dash) {
                    (SchedulerKind::FrFcfs, _) => Box::new(FrFcfs::new()),
                    (SchedulerKind::Dash(_), Some(h)) => Box::new(h.scheduler()),
                    _ => unreachable!(),
                };
                let mut ch = DramChannel::new(cfg.dram.clone(), sched);
                ch.set_trace_track(i as u32);
                ch
            })
            .collect();
        Self {
            cfg,
            channels,
            dash,
            probes: None,
            trace: None,
        }
    }

    /// Starts recording every accepted request (GemDroid-style trace
    /// capture, used by the trace-vs-execution methodology experiment).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Takes the recorded trace, disabling further recording.
    pub fn take_trace(&mut self) -> Vec<(Cycle, MemRequest)> {
        self.trace.take().unwrap_or_default()
    }

    /// The DASH feedback handle, when DASH is the active scheduler.
    pub fn dash(&self) -> Option<&DashHandle> {
        self.dash.as_ref()
    }

    /// Starts recording per-class bandwidth over `window`-cycle windows.
    pub fn enable_probes(&mut self, window: Cycle) {
        self.probes = Some(Probes::new(window));
    }

    /// Completed-window bandwidth samples for `class` (empty when probes
    /// are disabled).
    pub fn probe_samples(&self, class: SourceClass) -> &[(Cycle, u64)] {
        match &self.probes {
            None => &[],
            Some(p) => p.probe(class).samples(),
        }
    }

    /// Total bytes ever recorded for `class`, including the still-open
    /// window (0 when probes are disabled).
    pub fn probe_total_bytes(&self, class: SourceClass) -> u64 {
        match &self.probes {
            None => 0,
            Some(p) => p.probe(class).total(),
        }
    }

    /// Decodes a request's channel and partition-relative location.
    fn route(&self, req: &MemRequest) -> (usize, crate::mapping::DramLocation) {
        match &self.cfg.steering {
            Steering::Interleaved { mapping } => {
                let loc = mapping.decode(req.addr);
                (loc.channel, loc)
            }
            Steering::SourcePartitioned {
                cpu_channels,
                ip_channels,
                cpu_mapping,
                ip_mapping,
            } => {
                if req.source.is_cpu() {
                    let loc = cpu_mapping.decode(req.addr);
                    (cpu_channels[loc.channel], loc)
                } else {
                    let loc = ip_mapping.decode(req.addr);
                    (ip_channels[loc.channel], loc)
                }
            }
        }
    }

    /// Enqueues a request; on backpressure the request is handed back.
    pub fn enqueue(&mut self, req: MemRequest, now: Cycle) -> Result<(), MemRequest> {
        let (ch, loc) = self.route(&req);
        let r = self.channels[ch].enqueue(req, loc, now);
        if r.is_ok() {
            if let Some(t) = &mut self.trace {
                t.push((now, req));
            }
        }
        r
    }

    /// True when the channel that would serve `req` has queue space.
    pub fn can_accept(&self, req: &MemRequest) -> bool {
        let (ch, _) = self.route(req);
        !self.channels[ch].is_full()
    }

    /// Advances every channel one cycle.
    pub fn tick(&mut self, now: Cycle) {
        for ch in &mut self.channels {
            ch.tick(now);
        }
    }

    /// Collects all accesses finished by `now`. Reads need routing back to
    /// their requesters; writes are returned too for completeness.
    pub fn drain_finished(&mut self, now: Cycle) -> Vec<MemResponse> {
        let mut out = Vec::new();
        for ch in &mut self.channels {
            out.extend(ch.pop_finished(now));
        }
        if let Some(p) = &mut self.probes {
            for r in &out {
                p.probe_mut(SourceClass::of(r.source))
                    .record(r.finished, r.bytes as u64);
            }
        }
        out
    }

    /// Aggregated statistics across channels.
    pub fn stats(&self) -> ChannelStats {
        let mut agg = ChannelStats::default();
        for ch in &self.channels {
            agg.merge(ch.stats());
        }
        agg
    }

    /// Per-channel statistics.
    pub fn channel_stats(&self) -> Vec<&ChannelStats> {
        self.channels.iter().map(|c| c.stats()).collect()
    }

    /// Resets statistics on every channel.
    pub fn reset_stats(&mut self) {
        for ch in &mut self.channels {
            ch.reset_stats();
        }
    }

    /// Publishes per-channel instruments under `{prefix}.chN.*` and the
    /// cross-channel aggregate directly under `{prefix}.*`.
    pub fn publish(&self, reg: &mut Registry, prefix: &str) {
        for (i, ch) in self.channels.iter().enumerate() {
            ch.stats().publish(reg, &format!("{prefix}.ch{i}"));
        }
        self.stats().publish(reg, prefix);
        if let Some(p) = &self.probes {
            for class in SourceClass::ALL {
                let name = match class {
                    SourceClass::Cpu => "cpu",
                    SourceClass::Gpu => "gpu",
                    SourceClass::Display => "display",
                    SourceClass::Other => "other",
                };
                reg.set_counter(
                    format!("{prefix}.probe_bytes.{name}"),
                    p.probe(class).total(),
                );
            }
        }
    }

    /// True when every channel is idle.
    pub fn is_idle(&self) -> bool {
        self.channels.iter().all(|c| c.is_idle())
    }

    /// Requests waiting in channel scheduling queues, across channels.
    /// Zero means every remaining in-flight access is already in service
    /// with a precomputed completion cycle — i.e. the DRAM model has no
    /// per-cycle scheduling decisions left, only known-time events.
    pub fn queued(&self) -> usize {
        self.channels.iter().map(|c| c.queue_len()).sum()
    }

    /// Number of channels.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// The configuration this system was built from.
    pub fn config(&self) -> &MemorySystemConfig {
        &self.cfg
    }
}

impl emerald_common::snap::Snapshot for MemorySystem {
    /// Serializes every channel (each in its own section), the DASH
    /// shared state once, any bandwidth probes, and the request trace.
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_usize(self.channels.len());
        for ch in &self.channels {
            w.section(1, |w| Snapshot::snapshot(ch, w));
        }
        w.put_opt(&self.dash, |w, d| Snapshot::snapshot(d, w));
        w.put_opt(&self.probes, |w, p| {
            for class in SourceClass::ALL {
                p.probe(class).snap_write(w);
            }
        });
        w.put_opt(&self.trace, |w, t| {
            w.put_seq(t.iter(), |w, (cycle, req)| {
                w.put_u64(*cycle);
                req.snap_write(w);
            });
        });
    }
}

impl emerald_common::snap::Restore for MemorySystem {
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.get_usize()?;
        if n != self.channels.len() {
            return Err(SnapError::BadValue {
                what: "memory system channel count mismatch",
            });
        }
        for ch in &mut self.channels {
            r.section(1, |r| Restore::restore(ch, r))?;
        }
        let had_dash = r.get_bool()?;
        match (&mut self.dash, had_dash) {
            (Some(d), true) => Restore::restore(d, r)?,
            (None, false) => {}
            _ => {
                return Err(SnapError::BadValue {
                    what: "dash scheduler presence mismatch",
                })
            }
        }
        self.probes = r.get_opt(|r| {
            Ok(Probes {
                cpu: Timeline::snap_read(r)?,
                gpu: Timeline::snap_read(r)?,
                display: Timeline::snap_read(r)?,
                other: Timeline::snap_read(r)?,
            })
        })?;
        self.trace =
            r.get_opt(|r| r.get_seq(33, |r| Ok((r.get_u64()?, MemRequest::snap_read(r)?))))?;
        Ok(())
    }
}

impl NextEvent for MemorySystem {
    /// Earliest event across all channels: the next in-service completion
    /// or scheduler rollover, or `now + 1` while any scheduling queue is
    /// non-empty (see [`DramChannel`]'s impl).
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut ev = None;
        for ch in &self.channels {
            ev = emerald_common::event::earliest(ev, ch.next_event(now));
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dash::Clustering;
    use emerald_common::types::AccessKind;

    fn read(id: u64, addr: u64, source: TrafficSource) -> MemRequest {
        MemRequest {
            id,
            addr,
            bytes: 128,
            kind: AccessKind::Read,
            source,
            issued: 0,
        }
    }

    fn drain_all(ms: &mut MemorySystem) -> Vec<MemResponse> {
        let mut out = Vec::new();
        let mut now = 0;
        while !ms.is_idle() {
            ms.tick(now);
            out.extend(ms.drain_finished(now));
            now += 1;
            assert!(now < 1_000_000);
        }
        out
    }

    #[test]
    fn baseline_interleaves_all_sources() {
        let mut ms = MemorySystem::new(MemorySystemConfig::baseline(2, DramConfig::lpddr3_1333()));
        for i in 0..8u64 {
            ms.enqueue(read(i, i * 128, TrafficSource::Gpu), 0).unwrap();
        }
        let resp = drain_all(&mut ms);
        assert_eq!(resp.len(), 8);
        // Both channels serviced traffic.
        let per = ms.channel_stats();
        assert!(per[0].serviced > 0 && per[1].serviced > 0);
    }

    #[test]
    fn hmc_partitions_by_source() {
        let mut ms = MemorySystem::new(MemorySystemConfig::hmc(2, DramConfig::lpddr3_1333()));
        for i in 0..4u64 {
            ms.enqueue(read(i, i * 128, TrafficSource::Cpu(0)), 0)
                .unwrap();
            ms.enqueue(read(100 + i, i * 128, TrafficSource::Gpu), 0)
                .unwrap();
        }
        drain_all(&mut ms);
        let per = ms.channel_stats();
        // Channel 0 only CPU bytes, channel 1 only GPU bytes.
        assert!(per[0].source_bytes.contains_key(&TrafficSource::Cpu(0)));
        assert!(!per[0].source_bytes.contains_key(&TrafficSource::Gpu));
        assert!(per[1].source_bytes.contains_key(&TrafficSource::Gpu));
        assert!(!per[1].source_bytes.contains_key(&TrafficSource::Cpu(0)));
    }

    #[test]
    fn hmc_leaves_cpu_channel_idle_under_gpu_only_traffic() {
        // The imbalance mechanism behind Figure 10: while the GPU renders,
        // the CPU-assigned channel sits idle and GPU-only throughput halves.
        let dram = DramConfig::lpddr3_1333();
        let mut bas = MemorySystem::new(MemorySystemConfig::baseline(2, dram.clone()));
        let mut hmc = MemorySystem::new(MemorySystemConfig::hmc(2, dram));
        let finish = |ms: &mut MemorySystem| {
            for i in 0..32u64 {
                ms.enqueue(read(i, i * 128, TrafficSource::Gpu), 0).unwrap();
            }
            let mut now = 0;
            while !ms.is_idle() {
                ms.tick(now);
                ms.drain_finished(now);
                now += 1;
            }
            now
        };
        let t_bas = finish(&mut bas);
        let t_hmc = finish(&mut hmc);
        // CPU partition (channel 0) serviced nothing under HMC.
        assert_eq!(hmc.channel_stats()[0].serviced, 0);
        assert!(hmc.channel_stats()[1].serviced > 0);
        // Losing a channel slows the GPU down substantially.
        assert!(t_hmc as f64 > 1.5 * t_bas as f64, "hmc={t_hmc} bas={t_bas}");
    }

    #[test]
    fn dash_system_exposes_handle() {
        let ms = MemorySystem::new(MemorySystemConfig::dash(
            2,
            DramConfig::lpddr3_1333(),
            DashConfig::paper(Clustering::CpuOnly),
        ));
        assert!(ms.dash().is_some());
        let bas = MemorySystem::new(MemorySystemConfig::baseline(1, DramConfig::lpddr3_1333()));
        assert!(bas.dash().is_none());
    }

    #[test]
    fn dash_prioritizes_nonintensive_cpu_over_gpu() {
        let mut ms = MemorySystem::new(MemorySystemConfig::dash(
            1,
            DramConfig::lpddr3_1333(),
            DashConfig::paper(Clustering::CpuOnly),
        ));
        // Saturate with GPU traffic plus a trickle of CPU: CPU requests
        // should see lower average latency than GPU ones.
        let mut id = 0;
        for i in 0..48u64 {
            ms.enqueue(read(id, i * 128, TrafficSource::Gpu), 0).ok();
            id += 1;
        }
        for i in 0..8u64 {
            ms.enqueue(read(id, (1 << 20) + i * 4096, TrafficSource::Cpu(0)), 0)
                .unwrap();
            id += 1;
        }
        let resp = drain_all(&mut ms);
        let avg = |cls: SourceClass| {
            let v: Vec<u64> = resp
                .iter()
                .filter(|r| SourceClass::of(r.source) == cls)
                .map(|r| r.finished)
                .collect();
            v.iter().sum::<u64>() as f64 / v.len() as f64
        };
        assert!(
            avg(SourceClass::Cpu) < avg(SourceClass::Gpu),
            "DASH should service non-intensive CPU first"
        );
    }

    #[test]
    fn probes_record_by_class() {
        let mut ms = MemorySystem::new(MemorySystemConfig::baseline(1, DramConfig::lpddr3_1333()));
        ms.enable_probes(100);
        ms.enqueue(read(1, 0, TrafficSource::Gpu), 0).unwrap();
        ms.enqueue(read(2, 4096, TrafficSource::Display), 0)
            .unwrap();
        let mut now = 0;
        while !ms.is_idle() {
            ms.tick(now);
            ms.drain_finished(now);
            now += 1;
        }
        assert_eq!(ms.probe_total_bytes(SourceClass::Gpu), 128);
        assert_eq!(ms.probe_total_bytes(SourceClass::Display), 128);
        assert_eq!(ms.probe_total_bytes(SourceClass::Cpu), 0);
    }

    #[test]
    #[should_panic(expected = "interleaved mapping must span")]
    fn mismatched_mapping_panics() {
        let mut cfg = MemorySystemConfig::baseline(2, DramConfig::lpddr3_1333());
        cfg.steering = Steering::Interleaved {
            mapping: AddressMapping::baseline(4),
        };
        MemorySystem::new(cfg);
    }

    #[test]
    fn next_event_tracks_first_completion_exactly() {
        let mut ms = MemorySystem::new(MemorySystemConfig::baseline(2, DramConfig::lpddr3_1333()));
        ms.enqueue(read(1, 0x1000, TrafficSource::Gpu), 0).unwrap();
        assert_eq!(
            NextEvent::next_event(&ms, 0),
            Some(1),
            "queued request pins the clock"
        );
        ms.tick(0);
        assert!(ms.drain_finished(0).is_empty());
        let wake = NextEvent::next_event(&ms, 0).expect("completion is a known event");
        assert!(wake > 1, "a DRAM access takes many cycles");
        for c in 1..wake {
            ms.tick(c);
            assert!(ms.drain_finished(c).is_empty(), "completed early at {c}");
        }
        ms.tick(wake);
        assert_eq!(
            ms.drain_finished(wake).len(),
            1,
            "response lands exactly at the announced wake"
        );
        assert!(ms.is_idle());
        assert_eq!(
            NextEvent::next_event(&ms, wake),
            None,
            "idle FR-FCFS system is fully passive"
        );
    }

    #[test]
    fn snapshot_round_trip_resumes_dash_system_identically() {
        let cfg = MemorySystemConfig::dash(
            2,
            DramConfig::lpddr3_1333(),
            DashConfig::paper(Clustering::CpuOnly),
        );
        let mut ms = MemorySystem::new(cfg.clone());
        ms.enable_probes(64);
        ms.enable_trace();
        let mut id = 0;
        for i in 0..24u64 {
            ms.enqueue(read(id, i * 128, TrafficSource::Gpu), 0).ok();
            id += 1;
        }
        for i in 0..4u64 {
            ms.enqueue(read(id, (1 << 20) + i * 4096, TrafficSource::Cpu(0)), 0)
                .unwrap();
            id += 1;
        }
        let mut resp_a = Vec::new();
        for c in 0..50 {
            ms.tick(c);
            resp_a.extend(ms.drain_finished(c));
        }

        let mut w = SnapWriter::new();
        Snapshot::snapshot(&ms, &mut w);
        let enc = w.into_bytes();

        let mut twin = MemorySystem::new(cfg);
        twin.enable_probes(64); // same window; contents come from the snapshot
        let mut r = SnapReader::new(&enc);
        Restore::restore(&mut twin, &mut r).unwrap();
        r.finish().unwrap();

        // Both systems must drain identically from here on.
        let mut resp_b = Vec::new();
        let mut now = 50;
        while !ms.is_idle() || !twin.is_idle() {
            ms.tick(now);
            twin.tick(now);
            resp_a.extend(ms.drain_finished(now));
            resp_b.extend(twin.drain_finished(now));
            now += 1;
            assert!(now < 1_000_000);
        }
        let tail_a = &resp_a[resp_a.len() - resp_b.len()..];
        assert_eq!(tail_a, &resp_b[..]);
        assert_eq!(ms.stats().serviced, twin.stats().serviced);
        assert_eq!(
            ms.probe_total_bytes(SourceClass::Gpu),
            twin.probe_total_bytes(SourceClass::Gpu)
        );
        assert_eq!(ms.take_trace(), twin.take_trace());
        // Every single-byte truncation of the raw section stream is a
        // typed error, never a panic.
        for cut in 0..enc.len() {
            let mut fresh = MemorySystem::new(MemorySystemConfig::dash(
                2,
                DramConfig::lpddr3_1333(),
                DashConfig::paper(Clustering::CpuOnly),
            ));
            let mut r = SnapReader::new(&enc[..cut]);
            assert!(
                Restore::restore(&mut fresh, &mut r).is_err() || r.finish().is_err(),
                "truncation at {cut} went unnoticed"
            );
        }
    }

    #[test]
    fn fr_fcfs_snapshot_rejects_dash_restore_target() {
        let mut w = SnapWriter::new();
        let dash = MemorySystem::new(MemorySystemConfig::dash(
            1,
            DramConfig::lpddr3_1333(),
            DashConfig::paper(Clustering::CpuOnly),
        ));
        Snapshot::snapshot(&dash, &mut w);
        let enc = w.into_bytes();
        let mut bas = MemorySystem::new(MemorySystemConfig::baseline(1, DramConfig::lpddr3_1333()));
        let mut r = SnapReader::new(&enc);
        assert!(matches!(
            Restore::restore(&mut bas, &mut r),
            Err(SnapError::BadValue {
                what: "dash scheduler presence mismatch"
            })
        ));
    }

    #[test]
    fn idle_dash_system_still_has_boundary_events() {
        // DASH rolls shuffling/switching/quantum state at fixed boundaries
        // and draws from its RNG at switches, so even an idle system must
        // report a finite next event — skipping over a boundary would
        // desynchronize the RNG stream vs. the per-cycle reference.
        let ms = MemorySystem::new(MemorySystemConfig::dash(
            2,
            DramConfig::lpddr3_1333(),
            DashConfig::paper(Clustering::CpuOnly),
        ));
        let wake = NextEvent::next_event(&ms, 0).expect("DASH boundaries are events");
        assert!(wake > 0 && wake <= DashConfig::paper(Clustering::CpuOnly).scheduling_unit);
    }
}
