//! Set-associative caches with MSHRs.
//!
//! One cache type serves every level of the model: the per-SIMT-core L1
//! instruction/data/texture/depth/constant caches of Table 2, the GPU's
//! shared L2, and the CPU cores' L1/L2. The owner decides what sits below
//! the cache (interconnect, DRAM) and drives it through the outcome values
//! returned by [`Cache::access`] — the cache itself never owns other
//! components, which keeps the hierarchy composable.

use crate::req::ReqId;
use emerald_common::hash::FxHashMap;
use emerald_common::snap::{SnapError, SnapReader, SnapWriter};
use emerald_common::stats::Ratio;
use emerald_common::types::{AccessKind, Addr, Cycle};

/// Write handling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Write-back, write-allocate: write misses fetch the line; dirty
    /// evictions produce writebacks (used for L1D/L1Z pixel data and L2).
    WriteBackAllocate,
    /// Write-through, no-allocate: writes are forwarded downstream; write
    /// misses do not fill (classic GPGPU-Sim L1 behaviour for global data).
    WriteThroughNoAllocate,
}

/// Static cache parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Name used in statistics dumps.
    pub name: String,
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Cycles from access to data on a hit.
    pub hit_latency: u32,
    /// Number of outstanding missed lines tracked.
    pub mshrs: usize,
    /// Requests that can merge onto one missed line.
    pub targets_per_mshr: usize,
    /// Write policy.
    pub write_policy: WritePolicy,
}

impl CacheConfig {
    /// A small write-back cache, convenient for tests.
    pub fn small(name: &str) -> Self {
        Self {
            name: name.to_string(),
            size_bytes: 1 << 12,
            line_bytes: 128,
            ways: 4,
            hit_latency: 1,
            mshrs: 8,
            targets_per_mshr: 8,
            write_policy: WritePolicy::WriteBackAllocate,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.ways)
    }
}

/// Why an access could not be accepted this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// All MSHRs are in use.
    MshrFull,
    /// The matching MSHR has no free target slot.
    MshrTargetsFull,
    /// Every way in the set is reserved by an in-flight fill.
    SetReserved,
}

/// Outcome of [`Cache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Data available after `hit_latency`.
    Hit,
    /// New miss: the owner must forward a line fill (read) downstream and,
    /// if `writeback` is set, also send the evicted dirty line down.
    Miss {
        /// Dirty victim line address to write back, if any.
        writeback: Option<Addr>,
    },
    /// The line is already being fetched; this request was merged.
    MergedMiss,
    /// Write-through write: forward the write downstream; no fill.
    WriteForward,
    /// Structural hazard; retry next cycle.
    Stall(StallReason),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Reserved for an in-flight fill.
    pending: bool,
    lru: u64,
}

impl Line {
    const EMPTY: Line = Line {
        tag: 0,
        valid: false,
        dirty: false,
        pending: false,
        lru: 0,
    };
}

#[derive(Debug, Clone)]
struct Mshr {
    targets: Vec<(ReqId, AccessKind)>,
}

/// Per-cache statistics.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Hit ratio over all non-stalled accesses.
    pub hits: Ratio,
    /// Read accesses observed.
    pub reads: u64,
    /// Write accesses observed.
    pub writes: u64,
    /// Lines filled from below.
    pub fills: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// Accesses rejected for structural reasons.
    pub stalls: u64,
}

impl CacheStats {
    /// Total misses (non-merged and merged).
    pub fn misses(&self) -> u64 {
        self.hits.den - self.hits.num
    }

    /// Publishes the counters into `reg` under `prefix` (e.g.
    /// `gpu.core0.l1d` yields `gpu.core0.l1d.hits`, `.reads`, …).
    pub fn publish(&self, reg: &mut emerald_obs::Registry, prefix: &str) {
        reg.set_ratio(format!("{prefix}.hits"), self.hits);
        reg.set_counter(format!("{prefix}.misses"), self.misses());
        reg.set_counter(format!("{prefix}.reads"), self.reads);
        reg.set_counter(format!("{prefix}.writes"), self.writes);
        reg.set_counter(format!("{prefix}.fills"), self.fills);
        reg.set_counter(format!("{prefix}.writebacks"), self.writebacks);
        reg.set_counter(format!("{prefix}.stalls"), self.stalls);
    }
}

/// A set-associative, MSHR-based cache (timing + tag state only; data lives
/// in the functional [`MemImage`](crate::image::MemImage)).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    mshrs: FxHashMap<Addr, Mshr>,
    lru_tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible into
    /// `ways × line_bytes` power-of-two sets).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be 2^n");
        assert!(cfg.ways > 0 && cfg.size_bytes.is_multiple_of(cfg.line_bytes * cfg.ways));
        let sets = cfg.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            sets: vec![vec![Line::EMPTY; cfg.ways]; sets],
            mshrs: FxHashMap::default(),
            lru_tick: 0,
            cfg,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (e.g. between frames) without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Line-aligns an address.
    pub fn line_addr(&self, addr: Addr) -> Addr {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    fn set_index(&self, line: Addr) -> usize {
        ((line / self.cfg.line_bytes as u64) as usize) & (self.sets.len() - 1)
    }

    fn tag(&self, line: Addr) -> u64 {
        line / self.cfg.line_bytes as u64 / self.sets.len() as u64
    }

    /// True if `addr`'s line is present and valid (no state change).
    pub fn probe(&self, addr: Addr) -> bool {
        let line = self.line_addr(addr);
        let si = self.set_index(line);
        let tag = self.tag(line);
        self.sets[si].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Performs a timed access for request `id` at `addr`.
    ///
    /// The address may be unaligned; the cache operates on its line. See
    /// [`Access`] for what the owner must do next. `_now` is accepted for
    /// future latency-dependent policies; current replacement is
    /// access-order LRU.
    pub fn access(&mut self, addr: Addr, kind: AccessKind, id: ReqId, _now: Cycle) -> Access {
        let line = self.line_addr(addr);
        let si = self.set_index(line);
        let tag = self.tag(line);
        self.lru_tick += 1;
        let tick = self.lru_tick;

        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }

        // Hit?
        if let Some(l) = self.sets[si].iter_mut().find(|l| l.valid && l.tag == tag) {
            l.lru = tick;
            if kind == AccessKind::Write {
                match self.cfg.write_policy {
                    WritePolicy::WriteBackAllocate => {
                        l.dirty = true;
                        self.stats.hits.record(true);
                        return Access::Hit;
                    }
                    WritePolicy::WriteThroughNoAllocate => {
                        self.stats.hits.record(true);
                        return Access::WriteForward;
                    }
                }
            }
            self.stats.hits.record(true);
            return Access::Hit;
        }

        // Write-through caches never allocate on writes.
        if kind == AccessKind::Write && self.cfg.write_policy == WritePolicy::WriteThroughNoAllocate
        {
            self.stats.hits.record(false);
            return Access::WriteForward;
        }

        // Merge into an existing MSHR?
        if let Some(m) = self.mshrs.get_mut(&line) {
            if m.targets.len() >= self.cfg.targets_per_mshr {
                self.stats.stalls += 1;
                return Access::Stall(StallReason::MshrTargetsFull);
            }
            m.targets.push((id, kind));
            self.stats.hits.record(false);
            return Access::MergedMiss;
        }

        // New miss: need an MSHR and a victim way.
        if self.mshrs.len() >= self.cfg.mshrs {
            self.stats.stalls += 1;
            return Access::Stall(StallReason::MshrFull);
        }
        let victim = {
            let set = &self.sets[si];
            let mut best: Option<usize> = None;
            for (i, l) in set.iter().enumerate() {
                if l.pending {
                    continue;
                }
                if !l.valid {
                    best = Some(i);
                    break;
                }
                best = match best {
                    None => Some(i),
                    Some(b) if set[i].lru < set[b].lru => Some(i),
                    b => b,
                };
            }
            best
        };
        let Some(vi) = victim else {
            self.stats.stalls += 1;
            return Access::Stall(StallReason::SetReserved);
        };

        let victim_line = &self.sets[si][vi];
        let writeback = if victim_line.valid && victim_line.dirty {
            self.stats.writebacks += 1;
            // Reconstruct the victim's line address.
            let va =
                (victim_line.tag * self.sets.len() as u64 + si as u64) * self.cfg.line_bytes as u64;
            Some(va)
        } else {
            None
        };
        self.sets[si][vi] = Line {
            tag,
            valid: false,
            dirty: false,
            pending: true,
            lru: tick,
        };
        self.mshrs.insert(
            line,
            Mshr {
                targets: vec![(id, kind)],
            },
        );
        self.stats.hits.record(false);
        Access::Miss { writeback }
    }

    /// Completes a fill for `line` (line-aligned). Returns the ids of read
    /// requests waiting on it. If any merged target was a write, the line
    /// becomes dirty (write-back caches).
    ///
    /// Fills for lines with no MSHR (e.g. after a flush) are ignored and
    /// return an empty list.
    pub fn fill(&mut self, line: Addr) -> Vec<ReqId> {
        let Some(m) = self.mshrs.remove(&line) else {
            return Vec::new();
        };
        self.stats.fills += 1;
        let si = self.set_index(line);
        let tag = self.tag(line);
        let any_write = m.targets.iter().any(|(_, k)| *k == AccessKind::Write);
        if let Some(l) = self.sets[si].iter_mut().find(|l| l.pending && l.tag == tag) {
            l.valid = true;
            l.pending = false;
            l.dirty = any_write;
        }
        m.targets
            .into_iter()
            .filter(|(_, k)| *k == AccessKind::Read)
            .map(|(id, _)| id)
            .collect()
    }

    /// Invalidates everything (writebacks are *not* generated; used between
    /// independent experiment runs).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for l in set {
                *l = Line::EMPTY;
            }
        }
        self.mshrs.clear();
    }

    /// Number of in-flight missed lines.
    pub fn pending_lines(&self) -> usize {
        self.mshrs.len()
    }
}

impl emerald_common::snap::Snapshot for Cache {
    fn snapshot(&self, w: &mut SnapWriter) {
        w.put_usize(self.sets.len());
        for set in &self.sets {
            w.put_seq(set.iter(), |w, line| {
                w.put_u64(line.tag);
                w.put_bool(line.valid);
                w.put_bool(line.dirty);
                w.put_bool(line.pending);
                w.put_u64(line.lru);
            });
        }
        // FxHashMap iteration order is nondeterministic across builds;
        // sort by address so identical caches produce identical bytes.
        let mut mshrs: Vec<_> = self.mshrs.iter().collect();
        mshrs.sort_by_key(|&(addr, _)| *addr);
        w.put_seq(mshrs.into_iter(), |w, (addr, m)| {
            w.put_u64(*addr);
            w.put_seq(m.targets.iter(), |w, &(id, kind)| {
                w.put_u64(id);
                kind.snap_write(w);
            });
        });
        w.put_u64(self.lru_tick);
        self.stats.hits.snap_write(w);
        w.put_u64(self.stats.reads);
        w.put_u64(self.stats.writes);
        w.put_u64(self.stats.fills);
        w.put_u64(self.stats.writebacks);
        w.put_u64(self.stats.stalls);
    }
}

impl emerald_common::snap::Restore for Cache {
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.get_usize()? != self.sets.len() {
            return Err(SnapError::BadValue {
                what: "cache set count mismatch",
            });
        }
        for set in &mut self.sets {
            let ways = r.get_len(12)?;
            if ways != set.len() {
                return Err(SnapError::BadValue {
                    what: "cache way count mismatch",
                });
            }
            for line in set.iter_mut() {
                line.tag = r.get_u64()?;
                line.valid = r.get_bool()?;
                line.dirty = r.get_bool()?;
                line.pending = r.get_bool()?;
                line.lru = r.get_u64()?;
            }
        }
        let entries = r.get_seq(9, |r| {
            let addr = r.get_u64()?;
            let targets = r.get_seq(9, |r| Ok((r.get_u64()?, AccessKind::snap_read(r)?)))?;
            Ok((addr, Mshr { targets }))
        })?;
        if entries.len() > self.cfg.mshrs {
            return Err(SnapError::BadValue {
                what: "more MSHRs than the cache configuration allows",
            });
        }
        self.mshrs = entries.into_iter().collect();
        self.lru_tick = r.get_u64()?;
        self.stats.hits = Ratio::snap_read(r)?;
        self.stats.reads = r.get_u64()?;
        self.stats.writes = r.get_u64()?;
        self.stats.fills = r.get_u64()?;
        self.stats.writebacks = r.get_u64()?;
        self.stats.stalls = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> Cache {
        Cache::new(CacheConfig::small("t"))
    }

    #[test]
    fn geometry() {
        let c = cache();
        assert_eq!(c.config().sets(), 8);
        assert_eq!(c.line_addr(0x12345), 0x12300);
    }

    #[test]
    fn snapshot_round_trip_preserves_contents_mshrs_and_stats() {
        use emerald_common::snap::{Restore as _, Snapshot as _};
        let mut c = cache();
        // Populate: a filled dirty line, a pending miss with a merged
        // target, and some stat traffic.
        c.access(0x1000, AccessKind::Write, 1, 0);
        c.fill(0x1000);
        c.access(0x2000, AccessKind::Read, 2, 1);
        c.access(0x2004, AccessKind::Read, 3, 2);

        let mut w = SnapWriter::new();
        c.snapshot(&mut w);
        let enc = w.into_bytes();
        let mut d = cache();
        let mut r = SnapReader::new(&enc);
        d.restore(&mut r).unwrap();
        r.finish().unwrap();

        // Future behavior must match exactly: the pending fill completes
        // with the same waiters, hits stay hits, stats agree.
        assert_eq!(d.stats().hits, c.stats().hits);
        assert_eq!(d.pending_lines(), 1);
        assert_eq!(d.fill(0x2000), c.fill(0x2000));
        assert_eq!(
            d.access(0x1000, AccessKind::Read, 9, 5),
            c.access(0x1000, AccessKind::Read, 9, 5)
        );

        // A geometry mismatch is a typed error, not UB.
        let mut tiny = Cache::new(CacheConfig {
            size_bytes: 2 * 128,
            ways: 1,
            ..CacheConfig::small("t")
        });
        let mut r = SnapReader::new(&enc);
        assert!(matches!(
            tiny.restore(&mut r),
            Err(SnapError::BadValue { .. })
        ));
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = cache();
        match c.access(0x1000, AccessKind::Read, 1, 0) {
            Access::Miss { writeback: None } => {}
            o => panic!("expected clean miss, got {o:?}"),
        }
        // Same line, different word: merges.
        assert_eq!(c.access(0x1004, AccessKind::Read, 2, 1), Access::MergedMiss);
        let waiting = c.fill(0x1000);
        assert_eq!(waiting, vec![1, 2]);
        assert_eq!(c.access(0x1000, AccessKind::Read, 3, 2), Access::Hit);
        assert!(c.probe(0x1000));
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = cache();
        // Fill a line, dirty it, then evict it by filling the same set with
        // 4 more distinct tags (4-way).
        let set_stride = 8 * 128; // sets * line
        c.access(0x0, AccessKind::Write, 1, 0);
        c.fill(0x0);
        assert_eq!(c.access(0x0, AccessKind::Write, 2, 1), Access::Hit); // dirty
        let mut evicted_writeback = None;
        for i in 1..=4u64 {
            match c.access(i * set_stride, AccessKind::Read, 10 + i, 2) {
                Access::Miss { writeback } => {
                    if writeback.is_some() {
                        evicted_writeback = writeback;
                    }
                    c.fill(i * set_stride);
                }
                o => panic!("expected miss, got {o:?}"),
            }
        }
        assert_eq!(evicted_writeback, Some(0x0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_through_forwards() {
        let mut cfg = CacheConfig::small("wt");
        cfg.write_policy = WritePolicy::WriteThroughNoAllocate;
        let mut c = Cache::new(cfg);
        assert_eq!(
            c.access(0x40, AccessKind::Write, 1, 0),
            Access::WriteForward
        );
        // No allocation happened.
        assert!(!c.probe(0x40));
        // Read-fill then write hit still forwards.
        c.access(0x40, AccessKind::Read, 2, 1);
        c.fill(0x0); // 0x40 lines to line 0x0
        assert!(c.probe(0x40));
        assert_eq!(
            c.access(0x40, AccessKind::Write, 3, 2),
            Access::WriteForward
        );
    }

    #[test]
    fn mshr_exhaustion_stalls() {
        let mut cfg = CacheConfig::small("m");
        cfg.mshrs = 2;
        let mut c = Cache::new(cfg);
        assert!(matches!(
            c.access(0x0, AccessKind::Read, 1, 0),
            Access::Miss { .. }
        ));
        assert!(matches!(
            c.access(0x1000, AccessKind::Read, 2, 0),
            Access::Miss { .. }
        ));
        assert_eq!(
            c.access(0x2000, AccessKind::Read, 3, 0),
            Access::Stall(StallReason::MshrFull)
        );
        assert_eq!(c.stats().stalls, 1);
    }

    #[test]
    fn target_merge_limit_stalls() {
        let mut cfg = CacheConfig::small("tm");
        cfg.targets_per_mshr = 2;
        let mut c = Cache::new(cfg);
        c.access(0x0, AccessKind::Read, 1, 0);
        assert_eq!(c.access(0x4, AccessKind::Read, 2, 0), Access::MergedMiss);
        assert_eq!(
            c.access(0x8, AccessKind::Read, 3, 0),
            Access::Stall(StallReason::MshrTargetsFull)
        );
    }

    #[test]
    fn set_reservation_stalls_when_all_ways_pending() {
        let mut cfg = CacheConfig::small("sr");
        cfg.mshrs = 16;
        let mut c = Cache::new(cfg);
        let set_stride = 8 * 128;
        for i in 0..4u64 {
            assert!(matches!(
                c.access(i * set_stride, AccessKind::Read, i, 0),
                Access::Miss { .. }
            ));
        }
        assert_eq!(
            c.access(4 * set_stride, AccessKind::Read, 99, 0),
            Access::Stall(StallReason::SetReserved)
        );
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = cache(); // 4-way
        let set_stride = 8 * 128;
        // Fill 4 ways of set 0.
        for i in 0..4u64 {
            c.access(i * set_stride, AccessKind::Read, i, 0);
            c.fill(i * set_stride);
        }
        // Touch lines 1..3 so line 0 is LRU.
        for i in 1..4u64 {
            assert_eq!(
                c.access(i * set_stride, AccessKind::Read, 10 + i, 1),
                Access::Hit
            );
        }
        // New tag evicts line 0.
        c.access(4 * set_stride, AccessKind::Read, 20, 2);
        c.fill(4 * set_stride);
        assert!(!c.probe(0));
        assert!(c.probe(set_stride));
    }

    #[test]
    fn write_merge_marks_dirty_on_fill() {
        let mut c = cache();
        c.access(0x0, AccessKind::Read, 1, 0);
        assert_eq!(c.access(0x8, AccessKind::Write, 2, 0), Access::MergedMiss);
        let readers = c.fill(0x0);
        assert_eq!(readers, vec![1]); // write target not returned
                                      // Evicting now must produce a writeback (dirty via merged write).
        let set_stride = 8 * 128;
        for i in 1..=4u64 {
            if let Access::Miss {
                writeback: Some(wb),
            } = c.access(i * set_stride, AccessKind::Read, 10 + i, 1)
            {
                assert_eq!(wb, 0x0);
                return;
            }
            c.fill(i * set_stride);
        }
        panic!("dirty line was never evicted");
    }

    #[test]
    fn stats_hit_rate() {
        let mut c = cache();
        c.access(0x0, AccessKind::Read, 1, 0);
        c.fill(0x0);
        for _ in 0..9 {
            c.access(0x0, AccessKind::Read, 2, 1);
        }
        assert!((c.stats().hits.value() - 0.9).abs() < 1e-9);
        assert_eq!(c.stats().misses(), 1);
    }
}
