//! DRAM address mappings (Table 4 of the paper).
//!
//! The baseline and HMC CPU channels use **Row:Rank:Bank:Column:Channel**
//! ("page-striped": consecutive addresses fill a row buffer before moving
//! on, maximizing locality). HMC's IP channels use
//! **Row:Column:Rank:Bank:Channel** ("cache-line-striped": consecutive
//! lines hit different banks, maximizing parallelism for large sequential
//! buffers). Field names read most-significant → least-significant.

use emerald_common::types::Addr;

/// Physical DRAM coordinates of an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramLocation {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Column (line) index within the row.
    pub col: u64,
}

/// Bit-field ordering of the mapping, most-significant first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingScheme {
    /// `Row:Rank:Bank:Column:Channel` — the paper's baseline / CPU-channel
    /// mapping (locality: consecutive addresses share a row).
    RowRankBankColChan,
    /// `Row:Column:Rank:Bank:Channel` — the paper's HMC IP-channel mapping
    /// (parallelism: consecutive lines stripe across banks).
    RowColRankBankChan,
}

/// A concrete address mapping: scheme plus geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    /// Field ordering.
    pub scheme: MappingScheme,
    /// Number of channels this mapping distributes over.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Columns (cache lines) per row.
    pub cols_per_row: u64,
    /// Cache-line bytes (the mapping granule).
    pub line_bytes: u64,
}

impl AddressMapping {
    /// The paper's baseline mapping over `channels` channels.
    pub fn baseline(channels: usize) -> Self {
        Self {
            scheme: MappingScheme::RowRankBankColChan,
            channels,
            ranks: 1,
            banks: 8,
            cols_per_row: 32, // 32 lines × 128 B = 4 KiB row
            line_bytes: 128,
        }
    }

    /// The paper's HMC IP-channel mapping over `channels` channels.
    pub fn ip_parallel(channels: usize) -> Self {
        Self {
            scheme: MappingScheme::RowColRankBankChan,
            ..Self::baseline(channels)
        }
    }

    /// Decodes a byte address into DRAM coordinates.
    ///
    /// All geometry parameters must be powers of two.
    pub fn decode(&self, addr: Addr) -> DramLocation {
        debug_assert!(self.line_bytes.is_power_of_two());
        let mut x = addr / self.line_bytes;
        let mut take = |n: u64| -> u64 {
            if n <= 1 {
                return 0;
            }
            let v = x % n;
            x /= n;
            v
        };
        match self.scheme {
            MappingScheme::RowRankBankColChan => {
                // LSB → MSB: channel, column, bank, rank, row
                let channel = take(self.channels as u64) as usize;
                let col = take(self.cols_per_row);
                let bank = take(self.banks as u64) as usize;
                let rank = take(self.ranks as u64) as usize;
                let row = x;
                DramLocation {
                    channel,
                    rank,
                    bank,
                    row,
                    col,
                }
            }
            MappingScheme::RowColRankBankChan => {
                // LSB → MSB: channel, bank, rank, column, row
                let channel = take(self.channels as u64) as usize;
                let bank = take(self.banks as u64) as usize;
                let rank = take(self.ranks as u64) as usize;
                let col = take(self.cols_per_row);
                let row = x;
                DramLocation {
                    channel,
                    rank,
                    bank,
                    row,
                    col,
                }
            }
        }
    }

    /// Re-encodes DRAM coordinates back into a line-aligned byte address
    /// (inverse of [`AddressMapping::decode`]).
    pub fn encode(&self, loc: DramLocation) -> Addr {
        let mut x = loc.row;
        let mut put = |n: u64, v: u64| {
            if n > 1 {
                x = x * n + v;
            }
        };
        match self.scheme {
            MappingScheme::RowRankBankColChan => {
                put(self.ranks as u64, loc.rank as u64);
                put(self.banks as u64, loc.bank as u64);
                put(self.cols_per_row, loc.col);
                put(self.channels as u64, loc.channel as u64);
            }
            MappingScheme::RowColRankBankChan => {
                put(self.cols_per_row, loc.col);
                put(self.ranks as u64, loc.rank as u64);
                put(self.banks as u64, loc.bank as u64);
                put(self.channels as u64, loc.channel as u64);
            }
        }
        x * self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_strides_stay_in_row() {
        // Consecutive lines in one channel should share a row (locality).
        let m = AddressMapping::baseline(1);
        let a = m.decode(0);
        let b = m.decode(128);
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
        assert_eq!(b.col, a.col + 1);
    }

    #[test]
    fn ip_mapping_stripes_banks() {
        // Consecutive lines should hit different banks (parallelism).
        let m = AddressMapping::ip_parallel(1);
        let a = m.decode(0);
        let b = m.decode(128);
        assert_eq!(a.row, b.row);
        assert_ne!(a.bank, b.bank);
    }

    #[test]
    fn channel_interleave_is_line_granular() {
        let m = AddressMapping::baseline(2);
        assert_eq!(m.decode(0).channel, 0);
        assert_eq!(m.decode(128).channel, 1);
        assert_eq!(m.decode(256).channel, 0);
    }

    #[test]
    fn decode_encode_roundtrip_samples() {
        for scheme in [
            MappingScheme::RowRankBankColChan,
            MappingScheme::RowColRankBankChan,
        ] {
            let m = AddressMapping {
                scheme,
                channels: 2,
                ranks: 2,
                banks: 8,
                cols_per_row: 32,
                line_bytes: 128,
            };
            for addr in (0..1u64 << 22).step_by(128 * 7) {
                let aligned = addr & !(128 - 1);
                assert_eq!(m.encode(m.decode(aligned)), aligned);
            }
        }
    }

    #[test]
    fn single_channel_always_channel_zero() {
        let m = AddressMapping::baseline(1);
        for addr in (0..1u64 << 20).step_by(4096) {
            assert_eq!(m.decode(addr).channel, 0);
        }
    }
}
