//! The DASH deadline-aware memory scheduler (Usui et al., TACO 2016), as
//! re-evaluated by Emerald's case study I.
//!
//! DASH layers four priority classes on top of FR-FCFS:
//!
//! 1. urgent IPs (behind on their deadline),
//! 2. memory **non-intensive** CPU threads,
//! 3. non-urgent IPs *or* memory-intensive CPU threads — chosen
//!    probabilistically with a probability `P` re-evaluated every
//!    *switching unit* to balance service between the two groups,
//! 4. the group not chosen in (3).
//!
//! CPU threads are clustered into intensive/non-intensive every *quantum*
//! using TCM's threshold rule. The paper highlights an ambiguity (§5.1.1):
//! should the clustering bandwidth include non-CPU traffic? Both variants
//! are implemented — [`Clustering::CpuOnly`] is the paper's **DCB**
//! configuration, [`Clustering::System`] is **DTB** — and the experiments
//! show they misbehave in different ways, reproducing Figures 9 and 12–14.

use crate::req::MemRequest;
use crate::sched::{BankState, DramScheduler, FrFcfs, QueuedReq};
use emerald_common::rng::Xorshift64;
use emerald_common::snap::{SnapError, SnapReader, SnapWriter};
use emerald_common::types::{Cycle, TrafficSource};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// Which traffic the TCM clustering threshold is computed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clustering {
    /// `TotalBWusage` counts CPU traffic only (the paper's **DCB** config).
    CpuOnly,
    /// `TotalBWusage` counts all system traffic (the paper's **DTB**
    /// config); CPU threads then almost always classify as non-intensive.
    System,
}

/// DASH configuration (Table 3 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct DashConfig {
    /// Scheduling unit in cycles.
    pub scheduling_unit: Cycle,
    /// Probabilistic switching window in cycles.
    pub switching_unit: Cycle,
    /// TCM shuffling interval in cycles (kept for completeness; intra-
    /// cluster ranks are shuffled for fairness).
    pub shuffling_interval: Cycle,
    /// TCM clustering quantum in cycles.
    pub quantum: Cycle,
    /// TCM clustering factor (fraction of total bandwidth that stays in the
    /// latency-sensitive cluster).
    pub cluster_thresh: f64,
    /// Progress-rate threshold below which a non-GPU IP turns urgent.
    pub emergent_threshold_ip: f64,
    /// Progress-rate threshold below which the GPU turns urgent.
    pub emergent_threshold_gpu: f64,
    /// Clustering bandwidth variant (DCB vs DTB).
    pub clustering: Clustering,
    /// PRNG seed for the probabilistic switch.
    pub seed: u64,
}

impl DashConfig {
    /// The exact constants of Table 3.
    pub fn paper(clustering: Clustering) -> Self {
        Self {
            scheduling_unit: 1_000,
            switching_unit: 500,
            shuffling_interval: 800,
            quantum: 1_000_000,
            cluster_thresh: 0.15,
            emergent_threshold_ip: 0.8,
            emergent_threshold_gpu: 0.9,
            clustering,
            seed: 0xDA54,
        }
    }
}

/// State shared between the per-channel DASH scheduler instances (the
/// clustering and switching decisions are global, not per channel).
#[derive(Debug)]
pub struct DashShared {
    cfg: DashConfig,
    cpu_bytes: BTreeMap<usize, u64>,
    ip_bytes: u64,
    intensive: BTreeSet<usize>,
    urgent: BTreeSet<TrafficSource>,
    next_quantum: Cycle,
    next_switch: Cycle,
    /// Probability that memory-intensive CPU wins the probabilistic slot.
    p_cpu: f64,
    window_prefers_cpu: bool,
    /// TCM intra-cluster shuffling: rank offset rotated every shuffling
    /// interval so no intensive thread permanently outranks the others.
    shuffle_offset: usize,
    next_shuffle: Cycle,
    serviced_cpu_intensive: u64,
    serviced_ip_nonurgent: u64,
    rng: Xorshift64,
    /// Quantum boundaries crossed (for tests/diagnostics).
    pub quanta: u64,
}

impl DashShared {
    fn new(cfg: DashConfig) -> Self {
        let mut rng = Xorshift64::new(cfg.seed);
        let window_prefers_cpu = rng.chance(0.5);
        Self {
            next_quantum: cfg.quantum,
            next_switch: cfg.switching_unit,
            shuffle_offset: 0,
            next_shuffle: cfg.shuffling_interval,
            cfg,
            cpu_bytes: BTreeMap::new(),
            ip_bytes: 0,
            intensive: BTreeSet::new(),
            urgent: BTreeSet::new(),
            p_cpu: 0.5,
            window_prefers_cpu,
            serviced_cpu_intensive: 0,
            serviced_ip_nonurgent: 0,
            rng,
            quanta: 0,
        }
    }

    fn roll(&mut self, now: Cycle) {
        if now >= self.next_shuffle {
            self.next_shuffle = now + self.cfg.shuffling_interval;
            self.shuffle_offset = self.shuffle_offset.wrapping_add(1);
        }
        if now >= self.next_switch {
            self.next_switch = now + self.cfg.switching_unit;
            // Rebalance: give the slot to whichever group fell behind.
            if self.serviced_cpu_intensive > self.serviced_ip_nonurgent {
                self.p_cpu = (self.p_cpu - 0.1).max(0.05);
            } else if self.serviced_ip_nonurgent > self.serviced_cpu_intensive {
                self.p_cpu = (self.p_cpu + 0.1).min(0.95);
            }
            self.serviced_cpu_intensive = 0;
            self.serviced_ip_nonurgent = 0;
            self.window_prefers_cpu = self.rng.chance(self.p_cpu);
        }
        if now >= self.next_quantum {
            self.next_quantum = now + self.cfg.quantum;
            self.quanta += 1;
            self.recluster();
            self.cpu_bytes.clear();
            self.ip_bytes = 0;
        }
    }

    fn recluster(&mut self) {
        let cpu_total: u64 = self.cpu_bytes.values().sum();
        let total = match self.cfg.clustering {
            Clustering::CpuOnly => cpu_total,
            Clustering::System => cpu_total + self.ip_bytes,
        };
        let threshold = self.cfg.cluster_thresh * total as f64;
        let mut by_usage: Vec<(usize, u64)> =
            self.cpu_bytes.iter().map(|(k, v)| (*k, *v)).collect();
        by_usage.sort_by_key(|&(id, b)| (b, id));
        self.intensive.clear();
        let mut acc = 0f64;
        for (id, b) in by_usage {
            acc += b as f64;
            if acc > threshold {
                self.intensive.insert(id);
            }
        }
    }

    /// Priority class of a request source; lower is more important.
    fn class(&self, source: TrafficSource) -> u8 {
        match source {
            s if s.is_ip() && self.urgent.contains(&s) => 0,
            TrafficSource::Cpu(id) if !self.intensive.contains(&id) => 1,
            TrafficSource::Cpu(_) => {
                if self.window_prefers_cpu {
                    2
                } else {
                    3
                }
            }
            _ => {
                // Non-urgent IP.
                if self.window_prefers_cpu {
                    3
                } else {
                    2
                }
            }
        }
    }

    /// True when the CPU thread is currently in the intensive cluster.
    pub fn is_intensive(&self, cpu: usize) -> bool {
        self.intensive.contains(&cpu)
    }

    /// TCM shuffled rank of an intensive CPU thread (lower = preferred);
    /// rotates every shuffling interval for intra-cluster fairness.
    pub fn shuffled_rank(&self, cpu: usize) -> usize {
        let n = self.intensive.len().max(1);
        (cpu + self.shuffle_offset) % n
    }

    /// True when the IP is currently urgent.
    pub fn is_urgent(&self, source: TrafficSource) -> bool {
        self.urgent.contains(&source)
    }

    /// The next shuffle/switch/quantum rollover. These boundaries *drift*
    /// (each rollover re-arms at `now + interval`) and the switch rollover
    /// draws from the shared RNG, so the event-driven clock must execute
    /// the cycle each one lands on — skipping past a boundary would shift
    /// every later boundary and desynchronize the RNG stream from the
    /// per-cycle reference clocking.
    pub fn next_boundary(&self) -> Cycle {
        self.next_shuffle
            .min(self.next_switch)
            .min(self.next_quantum)
    }
}

impl emerald_common::snap::Snapshot for DashHandle {
    /// Serializes the entire shared scheduler state (clustering, windows,
    /// fairness counters, and the RNG stream) exactly once — per-channel
    /// `DashScheduler` instances are stateless views over this handle.
    fn snapshot(&self, w: &mut SnapWriter) {
        let s = self.0.lock().expect("dash state poisoned");
        w.put_seq(s.cpu_bytes.iter(), |w, (&id, &b)| {
            w.put_usize(id);
            w.put_u64(b);
        });
        w.put_u64(s.ip_bytes);
        w.put_seq(s.intensive.iter(), |w, &id| w.put_usize(id));
        w.put_seq(s.urgent.iter(), |w, &src| src.snap_write(w));
        w.put_u64(s.next_quantum);
        w.put_u64(s.next_switch);
        w.put_f64(s.p_cpu);
        w.put_bool(s.window_prefers_cpu);
        w.put_usize(s.shuffle_offset);
        w.put_u64(s.next_shuffle);
        w.put_u64(s.serviced_cpu_intensive);
        w.put_u64(s.serviced_ip_nonurgent);
        w.put_u64(s.rng.state());
        w.put_u64(s.quanta);
    }
}

impl emerald_common::snap::Restore for DashHandle {
    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let mut s = self.0.lock().expect("dash state poisoned");
        s.cpu_bytes = r
            .get_seq(9, |r| Ok((r.get_usize()?, r.get_u64()?)))?
            .into_iter()
            .collect();
        s.ip_bytes = r.get_u64()?;
        s.intensive = r.get_seq(1, |r| r.get_usize())?.into_iter().collect();
        s.urgent = r
            .get_seq(1, TrafficSource::snap_read)?
            .into_iter()
            .collect();
        s.next_quantum = r.get_u64()?;
        s.next_switch = r.get_u64()?;
        s.p_cpu = r.get_f64()?;
        s.window_prefers_cpu = r.get_bool()?;
        s.shuffle_offset = r.get_usize()?;
        s.next_shuffle = r.get_u64()?;
        s.serviced_cpu_intensive = r.get_u64()?;
        s.serviced_ip_nonurgent = r.get_u64()?;
        s.rng = Xorshift64::from_state(r.get_u64()?);
        s.quanta = r.get_u64()?;
        Ok(())
    }
}

/// Handle owned by the SoC for feeding DASH its deadline information.
#[derive(Debug, Clone)]
pub struct DashHandle(Arc<Mutex<DashShared>>);

impl DashHandle {
    /// Creates the shared state and returns a handle to it.
    pub fn new(cfg: DashConfig) -> Self {
        Self(Arc::new(Mutex::new(DashShared::new(cfg))))
    }

    /// Builds a per-channel scheduler sharing this state.
    pub fn scheduler(&self) -> DashScheduler {
        DashScheduler {
            shared: Arc::clone(&self.0),
        }
    }

    /// Marks `source` urgent or not directly.
    pub fn set_urgent(&self, source: TrafficSource, urgent: bool) {
        let mut s = self.0.lock().expect("dash state poisoned");
        if urgent {
            s.urgent.insert(source);
        } else {
            s.urgent.remove(&source);
        }
    }

    /// Deadline feedback: `done_frac` of the IP's current unit of work
    /// (frame) is finished after `elapsed_frac` of its period. The IP turns
    /// urgent when its progress rate falls below the emergent threshold
    /// (0.9 for the GPU, 0.8 for other IPs, per Table 3).
    pub fn update_progress(&self, source: TrafficSource, done_frac: f64, elapsed_frac: f64) {
        let mut s = self.0.lock().expect("dash state poisoned");
        let threshold = match source {
            TrafficSource::Gpu => s.cfg.emergent_threshold_gpu,
            _ => s.cfg.emergent_threshold_ip,
        };
        let urgent = if elapsed_frac <= 1e-9 {
            false
        } else {
            (done_frac / elapsed_frac) < threshold
        };
        if urgent {
            s.urgent.insert(source);
        } else {
            s.urgent.remove(&source);
        }
    }

    /// Runs `f` against the shared state (stats, tests).
    pub fn inspect<R>(&self, f: impl FnOnce(&DashShared) -> R) -> R {
        f(&self.0.lock().expect("dash state poisoned"))
    }
}

/// Per-channel DASH scheduler; all instances share one [`DashShared`].
#[derive(Debug)]
pub struct DashScheduler {
    shared: Arc<Mutex<DashShared>>,
}

impl DramScheduler for DashScheduler {
    fn pick(
        &mut self,
        queue: &[QueuedReq],
        banks: &[BankState],
        banks_per_rank: usize,
        _now: Cycle,
    ) -> Option<usize> {
        if queue.is_empty() {
            return None;
        }
        let shared = self.shared.lock().expect("dash state poisoned");
        let best_class = queue
            .iter()
            .map(|q| shared.class(q.req.source))
            .min()
            .expect("non-empty queue");
        let mut candidates: Vec<usize> = (0..queue.len())
            .filter(|&i| shared.class(queue[i].req.source) == best_class)
            .collect();
        // TCM intra-cluster shuffling: among memory-intensive CPU threads,
        // restrict to the best shuffled rank present (rotates over time).
        let intensive_class = if shared.window_prefers_cpu { 2 } else { 3 };
        if best_class == intensive_class {
            let rank_of = |i: usize| match queue[i].req.source {
                TrafficSource::Cpu(id) => shared.shuffled_rank(id),
                _ => usize::MAX,
            };
            if let Some(best_rank) = candidates.iter().map(|&i| rank_of(i)).min() {
                candidates.retain(|&i| rank_of(i) == best_rank);
            }
        }
        FrFcfs::pick_among(queue, banks, banks_per_rank, &candidates)
    }

    fn on_service(&mut self, req: &MemRequest, _row_hit: bool, _now: Cycle) {
        let mut s = self.shared.lock().expect("dash state poisoned");
        match req.source {
            TrafficSource::Cpu(id) => {
                *s.cpu_bytes.entry(id).or_insert(0) += req.bytes as u64;
                if s.intensive.contains(&id) {
                    s.serviced_cpu_intensive += 1;
                }
            }
            src => {
                s.ip_bytes += req.bytes as u64;
                if !s.urgent.contains(&src) {
                    s.serviced_ip_nonurgent += 1;
                }
            }
        }
    }

    fn tick(&mut self, now: Cycle) {
        self.shared.lock().expect("dash state poisoned").roll(now);
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Some(
            self.shared
                .lock()
                .expect("dash state poisoned")
                .next_boundary()
                .max(now + 1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::DramLocation;
    use emerald_common::types::AccessKind;

    fn qreq(id: u64, source: TrafficSource, arrived: Cycle) -> QueuedReq {
        QueuedReq {
            req: MemRequest {
                id,
                addr: 0,
                bytes: 128,
                kind: AccessKind::Read,
                source,
                issued: arrived,
            },
            loc: DramLocation {
                channel: 0,
                rank: 0,
                bank: (id % 8) as usize,
                row: id,
                col: 0,
            },
            arrived,
        }
    }

    fn banks() -> Vec<BankState> {
        vec![BankState::idle(); 8]
    }

    #[test]
    fn snapshot_round_trip_keeps_rng_and_windows_in_lockstep() {
        use emerald_common::snap::{Restore, SnapReader, SnapWriter, Snapshot};
        let cfg = DashConfig::paper(Clustering::CpuOnly);
        let h = DashHandle::new(cfg.clone());
        h.set_urgent(TrafficSource::Display, true);
        {
            // Accumulate bandwidth and cross several rollover boundaries so
            // every field diverges from its initial value.
            let mut s = h.0.lock().expect("dash state poisoned");
            s.cpu_bytes.insert(0, 4096);
            s.cpu_bytes.insert(3, 128);
            s.ip_bytes = 9000;
            s.serviced_cpu_intensive = 7;
            s.serviced_ip_nonurgent = 3;
            let boundary = s.next_boundary();
            s.roll(boundary);
            let boundary = s.next_boundary();
            s.roll(boundary);
        }

        let mut w = SnapWriter::new();
        Snapshot::snapshot(&h, &mut w);
        let enc = w.into_bytes();

        let mut twin = DashHandle::new(cfg);
        let mut r = SnapReader::new(&enc);
        Restore::restore(&mut twin, &mut r).unwrap();
        r.finish().unwrap();

        // Both handles must draw the same future RNG stream and agree on
        // every scheduling decision input.
        let mut a = h.0.lock().expect("dash state poisoned");
        let mut b = twin.0.lock().expect("dash state poisoned");
        assert_eq!(a.rng.state(), b.rng.state());
        assert_eq!(a.next_boundary(), b.next_boundary());
        assert_eq!(a.p_cpu, b.p_cpu);
        assert_eq!(a.window_prefers_cpu, b.window_prefers_cpu);
        assert_eq!(a.intensive, b.intensive);
        assert_eq!(a.urgent, b.urgent);
        assert_eq!(a.quanta, b.quanta);
        let boundary = a.next_boundary();
        a.roll(boundary);
        b.roll(boundary);
        assert_eq!(a.rng.state(), b.rng.state());
        assert_eq!(a.window_prefers_cpu, b.window_prefers_cpu);
    }

    #[test]
    fn urgent_ip_beats_everyone() {
        let h = DashHandle::new(DashConfig::paper(Clustering::CpuOnly));
        h.set_urgent(TrafficSource::Display, true);
        let mut s = h.scheduler();
        let queue = vec![
            qreq(1, TrafficSource::Cpu(0), 0),
            qreq(2, TrafficSource::Display, 5),
            qreq(3, TrafficSource::Gpu, 1),
        ];
        assert_eq!(s.pick(&queue, &banks(), 8, 10), Some(1));
    }

    #[test]
    fn non_intensive_cpu_beats_non_urgent_gpu() {
        let h = DashHandle::new(DashConfig::paper(Clustering::CpuOnly));
        let mut s = h.scheduler();
        // No clustering has happened, so every CPU is non-intensive.
        let queue = vec![
            qreq(1, TrafficSource::Gpu, 0),
            qreq(2, TrafficSource::Cpu(1), 5),
        ];
        assert_eq!(s.pick(&queue, &banks(), 8, 10), Some(1));
    }

    #[test]
    fn progress_feedback_toggles_urgency() {
        let h = DashHandle::new(DashConfig::paper(Clustering::CpuOnly));
        // GPU at 50% of work through 80% of its period: behind → urgent.
        h.update_progress(TrafficSource::Gpu, 0.5, 0.8);
        assert!(h.inspect(|s| s.is_urgent(TrafficSource::Gpu)));
        // Caught up → not urgent.
        h.update_progress(TrafficSource::Gpu, 0.95, 0.8);
        assert!(h.inspect(|s| !s.is_urgent(TrafficSource::Gpu)));
    }

    #[test]
    fn gpu_threshold_is_stricter_than_ip() {
        let h = DashHandle::new(DashConfig::paper(Clustering::CpuOnly));
        // Progress rate 0.85: below the GPU's 0.9 threshold but above the
        // generic IP threshold of 0.8.
        h.update_progress(TrafficSource::Gpu, 0.85, 1.0);
        h.update_progress(TrafficSource::Display, 0.85, 1.0);
        assert!(h.inspect(|s| s.is_urgent(TrafficSource::Gpu)));
        assert!(h.inspect(|s| !s.is_urgent(TrafficSource::Display)));
    }

    #[test]
    fn dcb_clustering_marks_heavy_threads_intensive() {
        let cfg = DashConfig {
            quantum: 100,
            ..DashConfig::paper(Clustering::CpuOnly)
        };
        let h = DashHandle::new(cfg);
        let mut s = h.scheduler();
        // CPU 0 light, CPU 1 heavy.
        for i in 0..2u64 {
            s.on_service(&qreq(i, TrafficSource::Cpu(0), 0).req, false, 0);
        }
        for i in 0..40u64 {
            s.on_service(&qreq(10 + i, TrafficSource::Cpu(1), 0).req, false, 0);
        }
        s.tick(150); // quantum rollover
        assert!(h.inspect(|st| st.is_intensive(1)));
        assert!(h.inspect(|st| !st.is_intensive(0)));
    }

    #[test]
    fn dtb_clustering_rarely_marks_intensive() {
        let cfg = DashConfig {
            quantum: 100,
            ..DashConfig::paper(Clustering::System)
        };
        let h = DashHandle::new(cfg);
        let mut s = h.scheduler();
        // Same CPU traffic as above, but with massive GPU traffic in the
        // total: the 15% threshold now covers all CPU threads.
        for i in 0..2u64 {
            s.on_service(&qreq(i, TrafficSource::Cpu(0), 0).req, false, 0);
        }
        for i in 0..40u64 {
            s.on_service(&qreq(10 + i, TrafficSource::Cpu(1), 0).req, false, 0);
        }
        for i in 0..2000u64 {
            s.on_service(&qreq(100 + i, TrafficSource::Gpu, 0).req, false, 0);
        }
        s.tick(150);
        assert!(h.inspect(|st| !st.is_intensive(0)));
        assert!(h.inspect(|st| !st.is_intensive(1)));
    }

    #[test]
    fn probabilistic_window_flips_over_time() {
        let cfg = DashConfig {
            switching_unit: 10,
            ..DashConfig::paper(Clustering::CpuOnly)
        };
        let h = DashHandle::new(cfg);
        let mut s = h.scheduler();
        let mut seen = std::collections::HashSet::new();
        for t in 0..2000 {
            s.tick(t);
            seen.insert(h.inspect(|st| st.window_prefers_cpu));
        }
        assert_eq!(seen.len(), 2, "both window preferences should occur");
    }

    #[test]
    fn shuffled_rank_rotates_over_time() {
        let cfg = DashConfig {
            quantum: 100,
            shuffling_interval: 50,
            ..DashConfig::paper(Clustering::CpuOnly)
        };
        let h = DashHandle::new(cfg);
        let mut s = h.scheduler();
        // Make CPUs 1 and 2 intensive.
        for i in 0..40u64 {
            s.on_service(&qreq(i, TrafficSource::Cpu(1), 0).req, false, 0);
            s.on_service(&qreq(100 + i, TrafficSource::Cpu(2), 0).req, false, 0);
        }
        s.on_service(&qreq(990, TrafficSource::Cpu(0), 0).req, false, 0);
        s.tick(150);
        assert!(h.inspect(|st| st.is_intensive(1) && st.is_intensive(2)));
        let r0 = h.inspect(|st| st.shuffled_rank(1));
        // Advance a few shuffling intervals, keeping the same traffic mix
        // flowing so re-clustering preserves the intensive set.
        for t in 151..=400 {
            if t % 5 == 0 {
                s.on_service(&qreq(2000 + t, TrafficSource::Cpu(1), t).req, false, t);
                s.on_service(&qreq(3000 + t, TrafficSource::Cpu(2), t).req, false, t);
            }
            s.tick(t);
        }
        assert!(h.inspect(|st| st.is_intensive(1) && st.is_intensive(2)));
        let r1 = h.inspect(|st| st.shuffled_rank(1));
        assert_ne!(r0, r1, "shuffling must rotate ranks");
    }

    #[test]
    fn within_class_uses_frfcfs() {
        let h = DashHandle::new(DashConfig::paper(Clustering::CpuOnly));
        let mut s = h.scheduler();
        let mut bs = banks();
        // Two GPU requests; the one with an open-row hit should win even
        // though it arrived later.
        let q1 = qreq(1, TrafficSource::Gpu, 0);
        let mut q2 = qreq(2, TrafficSource::Gpu, 5);
        q2.loc.bank = 3;
        q2.loc.row = 42;
        bs[3].open_row = Some(42);
        assert_eq!(s.pick(&[q1, q2], &bs, 8, 10), Some(1));
    }
}
