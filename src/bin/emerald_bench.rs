//! Offline benchmark harness: runs the canonical render, GPGPU and
//! SoC-frame workloads at 1..N worker threads and emits
//! `BENCH_frame.json` (wall-clock ms, simulated cycles, cycles/sec, and
//! speedup vs. the 1-thread run) to seed the performance trajectory.
//!
//! Usage: `emerald_bench [--smoke] [--out PATH]` — `scripts/bench.sh`
//! wraps the release build and runs from the repo root. `--smoke` shrinks
//! every workload for CI smoke checks; timings are then meaningless but
//! the JSON shape (and the cross-thread determinism checks) still hold.

use emerald::core::session::SceneBinding;
use emerald::prelude::*;
use std::sync::Arc;
use std::time::Instant;

struct Run {
    threads: usize,
    wall_ms: f64,
    cycles: u64,
}

struct Workload {
    name: &'static str,
    runs: Vec<Run>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_frame.json".to_string());
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };

    let mut workloads = Vec::new();

    // 1. Case-study-1 render frame (the acceptance workload).
    let (w, h) = if smoke { (64, 48) } else { (128, 96) };
    let mut reference_fb: Option<Vec<u32>> = None;
    let mut runs = Vec::new();
    for &t in thread_counts {
        let (wall_ms, cycles, fb) = bench_render(t, w, h);
        match &reference_fb {
            None => reference_fb = Some(fb),
            Some(r) => assert_eq!(
                r, &fb,
                "render framebuffer differs at {t} threads — determinism broken"
            ),
        }
        eprintln!("render_cs1_frame t={t}: {wall_ms:.1} ms, {cycles} cycles");
        runs.push(Run {
            threads: t,
            wall_ms,
            cycles,
        });
    }
    workloads.push(Workload {
        name: "render_cs1_frame",
        runs,
    });

    // 2. GPGPU saxpy.
    let n = if smoke { 1 << 12 } else { 1 << 16 };
    let mut runs = Vec::new();
    for &t in thread_counts {
        let (wall_ms, cycles) = bench_saxpy(t, n);
        eprintln!("gpgpu_saxpy t={t}: {wall_ms:.1} ms, {cycles} cycles");
        runs.push(Run {
            threads: t,
            wall_ms,
            cycles,
        });
    }
    workloads.push(Workload {
        name: "gpgpu_saxpy",
        runs,
    });

    // 3. Full SoC frame (display + CPUs + GPU behind the shared memsys).
    let mut runs = Vec::new();
    for &t in thread_counts {
        let (wall_ms, cycles) = bench_soc_frame(t, smoke);
        eprintln!("soc_frame t={t}: {wall_ms:.1} ms, {cycles} cycles");
        runs.push(Run {
            threads: t,
            wall_ms,
            cycles,
        });
    }
    workloads.push(Workload {
        name: "soc_frame",
        runs,
    });

    let json = to_json(&workloads, smoke);
    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("wrote {out_path}");
}

fn bench_render(threads: usize, width: u32, height: u32) -> (f64, u64, Vec<u32>) {
    let mem = SharedMem::with_capacity(1 << 26);
    let rt = RenderTarget::alloc(&mem, width, height);
    rt.clear(&mem, [0.0; 4], 1.0);
    let mut cfg = GpuConfig::case_study_1();
    cfg.threads = threads;
    let mut r = GpuRenderer::new(cfg, GfxConfig::case_study_1(), mem.clone(), rt);
    let mut port = SimpleMemPort::new(MemorySystem::new(MemorySystemConfig::baseline(
        2,
        DramConfig::lpddr3_1600(),
    )));
    let wl = emerald::scene::workloads::w_models().swap_remove(1);
    let binding = SceneBinding::new(&mem, &wl);
    r.draw(binding.draw_for_frame(0, width as f32 / height as f32, false));
    let t0 = Instant::now();
    let s = r.run_frame(&mut port, 500_000_000);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (wall_ms, s.cycles, rt.read_color(&mem))
}

fn bench_saxpy(threads: usize, n: usize) -> (f64, u64) {
    let mut cfg = GpuConfig::case_study_1();
    cfg.threads = threads;
    let mut gpu = emerald::gpu::Gpu::new(cfg);
    let mem = SharedMem::with_capacity(1 << 24);
    let mut ctx = emerald::gpu::GlobalMemCtx::new(mem.clone());
    let mut port = SimpleMemPort::new(MemorySystem::new(MemorySystemConfig::baseline(
        2,
        DramConfig::lpddr3_1600(),
    )));
    let x = mem.alloc((n * 4) as u64, 128);
    let y = mem.alloc((n * 4) as u64, 128);
    for i in 0..n {
        mem.write_f32(x + (i * 4) as u64, i as f32);
        mem.write_f32(y + (i * 4) as u64, 1.0);
    }
    let src = "
        mov.b32 r0, %input0
        shl.u32 r1, r0, 2
        add.u32 r2, r1, %param0
        add.u32 r3, r1, %param1
        ld.global.b32 r4, [r2+0]
        ld.global.b32 r5, [r3+0]
        mov.b32 r6, %param2
        mad.f32 r7, r6, r4, r5
        st.global.b32 [r3+0], r7
        exit";
    let k = emerald::gpu::Kernel::linear(
        Arc::new(emerald::isa::assemble(src).unwrap()),
        n,
        64,
        vec![x as u32, y as u32, 2.0f32.to_bits()],
    );
    gpu.launch_kernel(k);
    let t0 = Instant::now();
    let cycles = gpu.run_to_idle(0, 500_000_000, &mut ctx, &mut port);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (wall_ms, cycles)
}

fn bench_soc_frame(threads: usize, smoke: bool) -> (f64, u64) {
    use emerald::soc::experiment::{run_cell, MemCfgKind, RunParams};
    // `run_cell` builds its GPU configs internally, which seed their
    // thread knob from the environment.
    std::env::set_var("EMERALD_THREADS", threads.to_string());
    let m = &emerald::scene::workloads::m_models()[1];
    let params = RunParams {
        width: if smoke { 48 } else { 64 },
        height: if smoke { 32 } else { 48 },
        frames: 1,
        dram: DramConfig::lpddr3_1333(),
        gpu_frame_period: 200_000,
        probe_window: None,
        max_cycles_per_frame: 500_000_000,
    };
    let t0 = Instant::now();
    let res = run_cell(m, MemCfgKind::Dcb, &params);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    std::env::remove_var("EMERALD_THREADS");
    (wall_ms, res.avg_total_cycles as u64)
}

fn to_json(workloads: &[Workload], smoke: bool) -> String {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"emerald-bench-v1\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str(&format!("  \"host_threads\": {host},\n"));
    s.push_str("  \"workloads\": [\n");
    for (wi, w) in workloads.iter().enumerate() {
        s.push_str(&format!("    {{ \"name\": \"{}\", \"runs\": [\n", w.name));
        let base_ms = w.runs.first().map(|r| r.wall_ms).unwrap_or(0.0);
        for (ri, r) in w.runs.iter().enumerate() {
            let cps = if r.wall_ms > 0.0 {
                r.cycles as f64 / (r.wall_ms / 1e3)
            } else {
                0.0
            };
            let speedup = if r.wall_ms > 0.0 {
                base_ms / r.wall_ms
            } else {
                0.0
            };
            s.push_str(&format!(
                "      {{ \"threads\": {}, \"wall_ms\": {:.3}, \"cycles\": {}, \"cycles_per_sec\": {:.1}, \"speedup_vs_1t\": {:.3} }}{}\n",
                r.threads,
                r.wall_ms,
                r.cycles,
                cps,
                speedup,
                if ri + 1 < w.runs.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "    ] }}{}\n",
            if wi + 1 < workloads.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
