//! Offline benchmark harness: runs the canonical render, GPGPU and
//! SoC-frame workloads at 1..N worker threads and emits
//! `BENCH_frame.json` (wall-clock ms, simulated cycles, cycles/sec,
//! speedup vs. the 1-thread run, and a per-phase wall-time breakdown)
//! to seed the performance trajectory.
//!
//! Usage: `emerald_bench [--smoke] [--out PATH]` — `scripts/bench.sh`
//! wraps the release build and runs from the repo root. `--smoke` shrinks
//! every workload for CI smoke checks; timings are then meaningless but
//! the JSON shape (and the cross-thread determinism checks) still hold.
//!
//! Checkpoint/restore modes (both exit without writing a report):
//!
//! * `--checkpoint-at N [--snapshot FILE]` — run the canonical SoC
//!   pacing scenario, capture a snapshot at the first commit boundary at
//!   or after absolute cycle `N` and write it to `FILE` (default
//!   `soc_checkpoint.snap`).
//! * `--restore-from FILE` — revive such a snapshot (the scenario config
//!   is hashed into the container, so a mismatched `--smoke` flag fails
//!   loudly), finish any interrupted frame and run two more frames,
//!   reporting the warm-start wall time.
//!
//! The `soc_restore_cold` / `soc_restore_warm` workloads in the standard
//! report measure the same path end-to-end: a cold run (build + warm-up
//! frames + measured frames) against a warm start (restore + the same
//! measured frames), asserting bit-identical final cycles.
//!
//! With `EMERALD_PROFILE=1` each run additionally carries a host
//! self-profile (`obs::prof`): per-phase wall-clock attribution, pool
//! utilization and skip-opportunity counts, plus a Chrome-trace export of
//! the host phases next to the report (`<out>_trace.json` — load in
//! Perfetto). The harness always measures the profiler's own wall-clock
//! overhead on the saxpy workload and records it as
//! `profile_overhead_pct`; in `--smoke` mode an overhead above 5 % is a
//! hard failure (nonzero exit), keeping the "cheap when enabled"
//! guarantee under CI.

use emerald::bench_report::{to_json, PhaseTimes, PoolDispatch, Run, Workload};
use emerald::core::session::SceneBinding;
use emerald::gpu::CorePool;
use emerald::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Measures one closure in milliseconds.
fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64() * 1e3, r)
}

/// Snapshots the host profile of the run that just finished, when
/// profiling is on (`None` otherwise, so the JSON stays unchanged).
fn take_profile() -> Option<emerald::obs::HostProfile> {
    if emerald::obs::prof::enabled() {
        Some(emerald::obs::prof::take())
    } else {
        None
    }
}

/// One-line profile summary next to the per-run timing eprintln.
fn eprint_profile(name: &str, threads: usize, run: &Run) {
    let Some(p) = &run.profile else { return };
    let sum_ms = p.total_phase_ns() as f64 / 1e6;
    let busy_ms = p.pool_busy_ns.iter().sum::<u64>() as f64 / 1e6;
    let util = if p.pool_threads > 0 && run.phases.sim_ms > 0.0 {
        busy_ms / (p.pool_threads as f64 * run.phases.sim_ms)
    } else {
        0.0
    };
    eprintln!(
        "  profile {name} t={threads}: phases {sum_ms:.1} ms (sim {:.1} ms), gpu skippable {:.1}%, soc skippable {:.1}%, pool util {:.0}% imb {:.2}",
        run.phases.sim_ms,
        100.0 * p.gpu_skippable_frac(),
        100.0 * p.soc_skippable_frac(),
        100.0 * util,
        p.pool_imbalance(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_frame.json".to_string());
    let snapshot_path = args
        .iter()
        .position(|a| a == "--snapshot")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "soc_checkpoint.snap".to_string());
    if let Some(at) = args
        .iter()
        .position(|a| a == "--checkpoint-at")
        .and_then(|i| args.get(i + 1))
    {
        let at: u64 = at.parse().expect("--checkpoint-at wants a cycle number");
        checkpoint_mode(smoke, at, &snapshot_path);
        return;
    }
    if let Some(path) = args
        .iter()
        .position(|a| a == "--restore-from")
        .and_then(|i| args.get(i + 1).cloned())
    {
        restore_mode(smoke, &path);
        return;
    }
    if let Some(path) = args
        .iter()
        .position(|a| a == "--sweep")
        .and_then(|i| args.get(i + 1).cloned())
    {
        let workers = args
            .iter()
            .position(|a| a == "--workers")
            .and_then(|i| args.get(i + 1))
            .map(|w| w.parse::<usize>().expect("--workers wants an integer"))
            .unwrap_or(4);
        sweep_client_mode(&path, workers);
        return;
    }
    let thread_counts: &[usize] = &[1, 2, 4];

    let profiling = emerald::obs::prof::init_from_env();
    if profiling {
        emerald::obs::trace::enable(emerald::obs::TraceCat::Host);
        emerald::obs::prof::reset();
    }

    let mut workloads = Vec::new();

    // 1. Case-study-1 render frame (the acceptance workload).
    let (w, h) = if smoke { (64, 48) } else { (128, 96) };
    let mut reference_fb: Option<Vec<u32>> = None;
    let mut runs = Vec::new();
    for &t in thread_counts {
        let (run, fb) = bench_render(t, w, h, &mut reference_fb);
        eprintln!(
            "render_cs1_frame t={t}: {:.1} ms ({:.1} setup / {:.1} sim / {:.1} readback), {} cycles",
            run.wall_ms, run.phases.setup_ms, run.phases.sim_ms, run.phases.readback_ms, run.cycles
        );
        eprint_profile("render_cs1_frame", t, &run);
        if reference_fb.is_none() {
            reference_fb = Some(fb);
        }
        runs.push(run);
    }
    workloads.push(Workload {
        name: "render_cs1_frame",
        runs,
    });

    // 2. GPGPU saxpy. One discarded warmup run first: repeated 16 MiB
    // image alloc/free cycles adapt glibc's dynamic mmap threshold, after
    // which the allocation is served from the heap arena as a dirty block
    // that must be zeroed and re-faulted (~10-15 ms) — a cost that used to
    // land in whichever run happened to allocate third (the 4-thread
    // row's setup_ms, historically) rather than anything thread-related.
    // Warming until the threshold has adapted keeps every measured row on
    // the same allocator path.
    let n = if smoke { 1 << 12 } else { 1 << 16 };
    let (saxpy_warmup_ms, _) = timed(|| {
        for _ in 0..3 {
            let _ = bench_saxpy(1, 64);
        }
    });
    eprintln!("gpgpu_saxpy warmup: {saxpy_warmup_ms:.1} ms (allocator settling, untimed rows)");
    let mut runs = Vec::new();
    for &t in thread_counts {
        let run = bench_saxpy(t, n);
        eprintln!(
            "gpgpu_saxpy t={t}: {:.1} ms ({:.1} setup / {:.1} sim / {:.1} readback), {} cycles",
            run.wall_ms, run.phases.setup_ms, run.phases.sim_ms, run.phases.readback_ms, run.cycles
        );
        eprint_profile("gpgpu_saxpy", t, &run);
        runs.push(run);
    }
    workloads.push(Workload {
        name: "gpgpu_saxpy",
        runs,
    });

    // 3. Full SoC frame (display + CPUs + GPU behind the shared memsys).
    let mut runs = Vec::new();
    for &t in thread_counts {
        let run = bench_soc_frame(t, smoke);
        eprintln!(
            "soc_frame t={t}: {:.1} ms ({:.1} setup / {:.1} sim / {:.1} readback), {} cycles",
            run.wall_ms, run.phases.setup_ms, run.phases.sim_ms, run.phases.readback_ms, run.cycles
        );
        eprint_profile("soc_frame", t, &run);
        runs.push(run);
    }
    workloads.push(Workload {
        name: "soc_frame",
        runs,
    });

    // 4. Idle-rich SoC workloads: vsync-paced multi-frame rendering and
    // fence-parked cores. Most of their simulated time is quiet — these
    // are the workloads where the event skipper and the batched CPU
    // scheduler pay off, so their wall-clock (and bit-identical cycles)
    // are tracked across the EMERALD_SKIP / EMERALD_CPU_BATCH axes.
    type SocBench = fn(usize, bool) -> Run;
    let idle_benches: [(&'static str, SocBench); 2] = [
        ("soc_vsync", bench_soc_vsync),
        ("soc_fencewait", bench_soc_fencewait),
    ];
    for (name, bench) in idle_benches {
        let mut runs = Vec::new();
        for &t in thread_counts {
            let run = bench(t, smoke);
            eprintln!(
                "{name} t={t}: {:.1} ms ({:.1} setup / {:.1} sim / {:.1} readback), {} cycles",
                run.wall_ms,
                run.phases.setup_ms,
                run.phases.sim_ms,
                run.phases.readback_ms,
                run.cycles
            );
            eprint_profile(name, t, &run);
            runs.push(run);
        }
        workloads.push(Workload { name, runs });
    }

    // 5. Checkpoint/restore warm start: a cold run (build + warm-up
    // frames + measured frames) against a warm start that revives a
    // snapshot taken after the warm-up and replays the same measured
    // frames. Final simulated cycles must be bit-identical — the cycles
    // column of `soc_restore_warm` equals `soc_restore_cold` by
    // construction, so the committed baseline pins the restored run to
    // the straight run.
    let (cold, warm) = bench_soc_restore(smoke);
    eprintln!(
        "soc_restore cold: {:.1} ms ({:.1} build / {:.1} warmup+measured), {} cycles",
        cold.wall_ms, cold.phases.setup_ms, cold.phases.sim_ms, cold.cycles
    );
    eprintln!(
        "soc_restore warm: {:.1} ms ({:.1} restore / {:.1} measured), {} cycles — {:.2}x cold",
        warm.wall_ms,
        warm.phases.setup_ms,
        warm.phases.sim_ms,
        warm.cycles,
        cold.wall_ms / warm.wall_ms
    );
    assert!(
        warm.wall_ms < cold.wall_ms,
        "warm start ({:.1} ms) must beat cold start ({:.1} ms) — restore is cheaper than re-simulating the warm-up",
        warm.wall_ms,
        cold.wall_ms
    );
    workloads.push(Workload {
        name: "soc_restore_cold",
        runs: vec![cold],
    });
    workloads.push(Workload {
        name: "soc_restore_warm",
        runs: vec![warm],
    });

    // 6. Session-parallel sweeps: the same 8-session sweep (one shared
    // warmed prefix) run cold (every session re-simulates the warmup) and
    // forked (the prefix runs once, members restore its snapshot), each at
    // 1/2/4/8 scheduler workers. Here `threads` is the *worker* count and
    // `cycles` the *sum* across sessions; per-session results must be
    // bit-identical along both axes (worker count, fork-vs-cold), and the
    // forked sweep must beat the cold one at every worker count.
    let (cold_runs, forked_runs) = bench_sweeps(smoke);
    workloads.push(Workload {
        name: "sweep_cold",
        runs: cold_runs,
    });
    workloads.push(Workload {
        name: "sweep_forked",
        runs: forked_runs,
    });

    // 7. Pool dispatch-latency microbenchmark: the fixed cost of one
    // empty `CorePool::run` (publish, wake, join) per pool width.
    let mut pool_dispatch = Vec::new();
    for width in [2usize, 4] {
        let ns = bench_pool_dispatch(width, if smoke { 2_000 } else { 20_000 });
        eprintln!("pool_dispatch t={width}: {ns:.0} ns/run");
        pool_dispatch.push(PoolDispatch {
            threads: width,
            ns_per_run: ns,
        });
    }

    // 8. Profiler overhead: the same saxpy sim with profiling forced off
    // vs. on. Cycles must be bit-identical (the profiler never touches
    // simulated state); wall-clock cost is recorded and, in smoke mode,
    // gated at 5 %.
    let overhead_pct = measure_profile_overhead(smoke, profiling);
    eprintln!("profile_overhead: {overhead_pct:.2} %");

    let json = to_json(&workloads, &pool_dispatch, smoke, Some(overhead_pct));
    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("wrote {out_path}");

    if profiling {
        // Lay each run's host phases on its own track and export a Chrome
        // trace next to the report.
        let mut track = 0u32;
        for w in &workloads {
            for r in &w.runs {
                if let Some(p) = &r.profile {
                    p.emit_trace(track);
                    track += 1;
                }
            }
        }
        let events = emerald::obs::trace::drain();
        let trace_path = out_path
            .strip_suffix(".json")
            .map(|s| format!("{s}_trace.json"))
            .unwrap_or_else(|| format!("{out_path}_trace.json"));
        std::fs::write(&trace_path, emerald::obs::trace::export_chrome(&events))
            .expect("write trace output");
        eprintln!("wrote {trace_path} ({} events)", events.len());
    }

    // The 5 % budget is a property of the profiler under the *default*
    // clocking. Per-cycle reference modes (EMERALD_SKIP=0 /
    // EMERALD_CPU_BATCH=0) tick many near-empty cycles where the fixed
    // per-lap timestamp cost is legitimately a larger fraction of the
    // work, so those runs record the overhead but don't hard-fail on it.
    let default_clocking =
        emerald::common::event::skip_from_env() && emerald::common::event::cpu_batch_from_env();
    if smoke && default_clocking && overhead_pct > 5.0 {
        eprintln!("FAIL: profiler overhead {overhead_pct:.2} % exceeds the 5 % budget");
        std::process::exit(1);
    }
}

/// Measures the profiler's wall-clock overhead: runs the saxpy sim with
/// profiling off and on in *interleaved* rounds — back-to-back arms see
/// the same background load, so host-load drift cancels instead of
/// landing on one arm — and compares the best sim time of each
/// (min-of-N damps the remaining scheduler noise). Asserts the simulated
/// cycle counts match — profiling must be invisible to the model.
/// Restores the profiling state that was active on entry.
fn measure_profile_overhead(smoke: bool, was_profiling: bool) -> f64 {
    let n = if smoke { 1 << 12 } else { 1 << 15 };
    let rounds = if smoke { 5 } else { 3 };
    let one = |on: bool| -> (f64, u64) {
        emerald::obs::prof::set_enabled(on);
        emerald::obs::prof::reset();
        let run = bench_saxpy(1, n);
        (run.phases.sim_ms, run.cycles)
    };
    // Warmup both arms: pays one-off costs (cold caches, lazy page
    // faults, calibration) outside the measurement.
    let _ = one(false);
    let _ = one(true);
    let mut off_ms = f64::INFINITY;
    let mut on_ms = f64::INFINITY;
    let mut off_cycles = 0;
    let mut on_cycles = 0;
    for _ in 0..rounds {
        let (ms, c) = one(false);
        off_ms = off_ms.min(ms);
        off_cycles = c;
        let (ms, c) = one(true);
        on_ms = on_ms.min(ms);
        on_cycles = c;
    }
    emerald::obs::prof::set_enabled(was_profiling);
    emerald::obs::prof::reset();
    assert_eq!(
        off_cycles, on_cycles,
        "profiling changed simulated cycles — it must never touch the model"
    );
    ((on_ms - off_ms) / off_ms * 100.0).max(0.0)
}

/// Nanoseconds per empty `CorePool::run` at the given width, averaged
/// over `iters` calls after a short warmup.
fn bench_pool_dispatch(width: usize, iters: u32) -> f64 {
    let pool = CorePool::new(width);
    for _ in 0..100 {
        pool.run(&|_| {});
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        pool.run(&|_| {});
    }
    t0.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn bench_render(
    threads: usize,
    width: u32,
    height: u32,
    reference_fb: &mut Option<Vec<u32>>,
) -> (Run, Vec<u32>) {
    let (setup_ms, (mem, rt, mut r, mut port)) = timed(|| {
        let mem = SharedMem::with_capacity(1 << 26);
        let rt = RenderTarget::alloc(&mem, width, height);
        rt.clear(&mem, [0.0; 4], 1.0);
        let mut cfg = GpuConfig::case_study_1();
        cfg.threads = threads;
        let mut r = GpuRenderer::new(cfg, GfxConfig::case_study_1(), mem.clone(), rt);
        let port = SimpleMemPort::new(MemorySystem::new(MemorySystemConfig::baseline(
            2,
            DramConfig::lpddr3_1600(),
        )));
        let wl = emerald::scene::workloads::w_models().swap_remove(1);
        let binding = SceneBinding::new(&mem, &wl);
        r.draw(binding.draw_for_frame(0, width as f32 / height as f32, false));
        (mem, rt, r, port)
    });
    emerald::obs::prof::reset();
    let (sim_ms, s) = timed(|| r.run_frame(&mut port, 500_000_000));
    let profile = take_profile();
    let (readback_ms, fb) = timed(|| {
        let fb = rt.read_color(&mem);
        if let Some(reference) = reference_fb {
            assert_eq!(
                reference, &fb,
                "render framebuffer differs at {threads} threads — determinism broken"
            );
        }
        fb
    });
    let phases = PhaseTimes {
        setup_ms,
        sim_ms,
        readback_ms,
    };
    (
        Run {
            threads,
            wall_ms: phases.total_ms(),
            cycles: s.cycles,
            phases,
            profile,
            sessions: None,
        },
        fb,
    )
}

fn bench_saxpy(threads: usize, n: usize) -> Run {
    let (setup_ms, (mut gpu, mut ctx, mut port, y)) = timed(|| {
        let mut cfg = GpuConfig::case_study_1();
        cfg.threads = threads;
        let mut gpu = emerald::gpu::Gpu::new(cfg);
        let mem = SharedMem::with_capacity(1 << 24);
        let ctx = emerald::gpu::GlobalMemCtx::new(mem.clone());
        let port = SimpleMemPort::new(MemorySystem::new(MemorySystemConfig::baseline(
            2,
            DramConfig::lpddr3_1600(),
        )));
        let x = mem.alloc((n * 4) as u64, 128);
        let y = mem.alloc((n * 4) as u64, 128);
        for i in 0..n {
            mem.write_f32(x + (i * 4) as u64, i as f32);
            mem.write_f32(y + (i * 4) as u64, 1.0);
        }
        let src = "
            mov.b32 r0, %input0
            shl.u32 r1, r0, 2
            add.u32 r2, r1, %param0
            add.u32 r3, r1, %param1
            ld.global.b32 r4, [r2+0]
            ld.global.b32 r5, [r3+0]
            mov.b32 r6, %param2
            mad.f32 r7, r6, r4, r5
            st.global.b32 [r3+0], r7
            exit";
        let k = emerald::gpu::Kernel::linear(
            Arc::new(emerald::isa::assemble(src).unwrap()),
            n,
            64,
            vec![x as u32, y as u32, 2.0f32.to_bits()],
        );
        gpu.launch_kernel(k);
        (gpu, ctx, port, (mem, y))
    });
    emerald::obs::prof::reset();
    let (sim_ms, cycles) = timed(|| gpu.run_to_idle(0, 500_000_000, &mut ctx, &mut port));
    let profile = take_profile();
    // Spot-check the tail element so the phase measures a real readback.
    let (readback_ms, _) = timed(|| {
        let (mem, y) = &y;
        let last = mem.read_f32(y + ((n - 1) * 4) as u64);
        assert!(last.is_finite());
        last
    });
    let phases = PhaseTimes {
        setup_ms,
        sim_ms,
        readback_ms,
    };
    Run {
        threads,
        wall_ms: phases.total_ms(),
        cycles,
        phases,
        profile,
        sessions: None,
    }
}

/// Builds the idle-rich SoC used by `soc_vsync` and `soc_fencewait`: the
/// deliberately light pacing scene behind the case-study-1 platform.
/// Returns the SoC plus the scene binding and aspect ratio.
fn idle_soc(threads: usize, smoke: bool) -> (Soc, SceneBinding, f32) {
    use emerald::soc::experiment::MemCfgKind;
    std::env::set_var("EMERALD_THREADS", threads.to_string());
    let (w, h) = if smoke { (48, 32) } else { (64, 48) };
    let cfg = SocConfig::case_study_1(
        MemCfgKind::Dcb.build(DramConfig::lpddr3_1333()),
        w,
        h,
        200_000,
    );
    let soc = Soc::new(cfg);
    let binding = SceneBinding::new(&soc.mem, &emerald::scene::workloads::idle_model());
    std::env::remove_var("EMERALD_THREADS");
    (soc, binding, w as f32 / h as f32)
}

/// Vsync-paced multi-frame run: each frame finishes far ahead of the next
/// vsync boundary and the SoC idles until it (`Soc::idle_until`). With
/// event skipping on, the idle gap collapses to a handful of host
/// iterations; with batching on, the in-frame CPU scripts stop pinning
/// the clock. Reported cycles are the final simulated time, which must be
/// bit-identical across both axes.
fn bench_soc_vsync(threads: usize, smoke: bool) -> Run {
    let frames: u32 = if smoke { 3 } else { 6 };
    const VSYNC: u64 = 1_000_000;
    let (setup_ms, (mut soc, binding, aspect)) = timed(|| idle_soc(threads, smoke));
    emerald::obs::prof::reset();
    let (sim_ms, cycles) = timed(|| {
        for f in 0..frames {
            soc.run_frame(vec![binding.draw_for_frame(f, aspect, false)], 500_000_000);
            let next = (soc.now() / VSYNC + 1) * VSYNC;
            soc.idle_until(next);
        }
        soc.now()
    });
    let profile = take_profile();
    let phases = PhaseTimes {
        setup_ms,
        sim_ms,
        readback_ms: 0.0,
    };
    Run {
        threads,
        wall_ms: phases.total_ms(),
        cycles,
        phases,
        profile,
        sessions: None,
    }
}

/// Fence-blocked multi-frame run: one driver core plus three workers
/// parked in `WaitGpu` for the whole frame, polling a fence line every
/// few hundred cycles. Nearly all CPU-side simulated time is analytically
/// skippable; the batched scheduler advances the parked cores without
/// per-cycle host work even while the GPU renders.
fn bench_soc_fencewait(threads: usize, smoke: bool) -> Run {
    use emerald::soc::cpu::{CpuWorkload, Phase};
    let frames: u32 = if smoke { 2 } else { 4 };
    let (setup_ms, (mut soc, binding, aspect)) = timed(|| {
        use emerald::soc::experiment::MemCfgKind;
        std::env::set_var("EMERALD_THREADS", threads.to_string());
        let (w, h) = if smoke { (48, 32) } else { (64, 48) };
        let parked = || CpuWorkload {
            phases: vec![Phase::WaitGpu],
        };
        let mut cfg = SocConfig::case_study_1(
            MemCfgKind::Dcb.build(DramConfig::lpddr3_1333()),
            w,
            h,
            200_000,
        );
        cfg.cpu_workloads = vec![CpuWorkload::driver(), parked(), parked(), parked()];
        let soc = Soc::new(cfg);
        let binding = SceneBinding::new(&soc.mem, &emerald::scene::workloads::idle_model());
        std::env::remove_var("EMERALD_THREADS");
        (soc, binding, w as f32 / h as f32)
    });
    emerald::obs::prof::reset();
    let (sim_ms, cycles) = timed(|| {
        for f in 0..frames {
            soc.run_frame(vec![binding.draw_for_frame(f, aspect, false)], 500_000_000);
        }
        soc.now()
    });
    let profile = take_profile();
    let phases = PhaseTimes {
        setup_ms,
        sim_ms,
        readback_ms: 0.0,
    };
    Run {
        threads,
        wall_ms: phases.total_ms(),
        cycles,
        phases,
        profile,
        sessions: None,
    }
}

/// `--checkpoint-at N`: runs the canonical pacing scenario until the
/// first commit boundary at or after absolute cycle `N`, snapshots there
/// and writes the container to `path`. Frames keep running until the
/// boundary is found (bounded, so a cycle far beyond the scenario's
/// horizon fails loudly instead of spinning).
fn checkpoint_mode(smoke: bool, at: u64, path: &str) {
    let (mut soc, binding, aspect) = idle_soc(1, smoke);
    for f in 0..64u32 {
        let draw = binding.draw_for_frame(f, aspect, false);
        let (_, snap) = soc.run_frame_checkpoint(vec![draw], 500_000_000, Some(at));
        let bytes = match snap {
            Some(b) => b,
            // The target fell between this frame's last commit boundary
            // and the frame end: the inter-frame barrier is the first
            // boundary at or after `at`.
            None if soc.now() >= at => soc.checkpoint(),
            None => continue,
        };
        std::fs::write(path, &bytes).expect("write snapshot");
        eprintln!(
            "checkpoint at cycle {} (frame {f}, requested {at}): {} bytes -> {path}",
            soc.now(),
            bytes.len()
        );
        return;
    }
    eprintln!("FAIL: no commit boundary at or after cycle {at} within 64 frames");
    std::process::exit(1);
}

/// `--restore-from FILE`: revives a snapshot written by
/// `--checkpoint-at`, finishes any interrupted frame and runs two more,
/// reporting the warm-start wall time. The scratch SoC exists only to
/// rebuild the scenario config (hash-checked against the container) and
/// the scene binding, whose descriptors are valid in the restored memory
/// image because the snapshot captured the same deterministic uploads.
fn restore_mode(smoke: bool, path: &str) {
    let (scratch, binding, aspect) = idle_soc(1, smoke);
    let bytes = std::fs::read(path).expect("read snapshot");
    let (restore_ms, soc) = timed(|| Soc::restore(&bytes, scratch.config()));
    let mut soc = soc.unwrap_or_else(|e| {
        eprintln!("FAIL: restore rejected {path}: {e:?} (wrong --smoke flag or stale file?)");
        std::process::exit(1);
    });
    let mut f = soc.frames_rendered() as u32;
    let (sim_ms, cycles) = timed(|| {
        if soc.has_pending_frame() {
            soc.resume_frame(vec![binding.draw_for_frame(f, aspect, false)], 500_000_000);
            f += 1;
        }
        for _ in 0..2 {
            soc.run_frame(vec![binding.draw_for_frame(f, aspect, false)], 500_000_000);
            f += 1;
        }
        soc.now()
    });
    eprintln!(
        "restored {path} ({} bytes) in {restore_ms:.1} ms; ran to frame {f} in {sim_ms:.1} ms, now at cycle {cycles}",
        bytes.len()
    );
}

/// Cold-vs-warm start on the pacing scenario. Cold builds a SoC and runs
/// warm-up plus measured frames; warm revives a snapshot taken after the
/// warm-up (captured outside either timing window) and replays only the
/// measured frames. Both arms must land on identical final cycles and
/// framebuffers — restore is only a win if it is also invisible.
fn bench_soc_restore(smoke: bool) -> (Run, Run) {
    let warmup: u32 = if smoke { 2 } else { 4 };
    let measured: u32 = if smoke { 1 } else { 2 };

    let (build_ms, (mut soc, binding, aspect)) = timed(|| idle_soc(1, smoke));
    let (warmup_ms, _) = timed(|| {
        for f in 0..warmup {
            soc.run_frame(vec![binding.draw_for_frame(f, aspect, false)], 500_000_000);
        }
    });
    let bytes = soc.checkpoint();
    let (cold_ms, cold_cycles) = timed(|| {
        for f in warmup..warmup + measured {
            soc.run_frame(vec![binding.draw_for_frame(f, aspect, false)], 500_000_000);
        }
        soc.now()
    });
    let cold_fb = soc.rt.read_color(&soc.mem);

    let (restore_ms, warm_soc) = timed(|| Soc::restore(&bytes, soc.config()));
    let mut warm_soc = warm_soc.expect("restore own checkpoint");
    let (warm_ms, warm_cycles) = timed(|| {
        for f in warmup..warmup + measured {
            warm_soc.run_frame(vec![binding.draw_for_frame(f, aspect, false)], 500_000_000);
        }
        warm_soc.now()
    });
    assert_eq!(
        cold_cycles, warm_cycles,
        "restored run's simulated cycles diverged from the straight run"
    );
    assert_eq!(
        cold_fb,
        warm_soc.rt.read_color(&warm_soc.mem),
        "restored run's framebuffer diverged from the straight run"
    );

    let cold_phases = PhaseTimes {
        setup_ms: build_ms,
        sim_ms: warmup_ms + cold_ms,
        readback_ms: 0.0,
    };
    let warm_phases = PhaseTimes {
        setup_ms: restore_ms,
        sim_ms: warm_ms,
        readback_ms: 0.0,
    };
    (
        Run {
            threads: 1,
            wall_ms: cold_phases.total_ms(),
            cycles: cold_cycles,
            phases: cold_phases,
            profile: None,
            sessions: None,
        },
        Run {
            threads: 1,
            wall_ms: warm_phases.total_ms(),
            cycles: warm_cycles,
            phases: warm_phases,
            profile: None,
            sessions: None,
        },
    )
}

/// The built-in 8-session sweep behind the `sweep_cold` / `sweep_forked`
/// rows: 2 frame offsets × 4 late-Z seeds over the idle workload, all
/// sharing one warmed prefix so the forked plan collapses to a single
/// warmup.
fn bench_sweep_spec(smoke: bool) -> emerald::serve::SweepSpec {
    let (warmup, frames) = if smoke { (1, 1) } else { (2, 2) };
    emerald::serve::SweepSpec::parse(&format!(
        r#"{{
            "name": "bench",
            "base": {{"model": "I1", "warmup": {warmup}, "frames": {frames}}},
            "axes": [
                {{"key": "frame_offset", "values": [0, 1]}},
                {{"key": "seed", "values": [0, 1, 2, 3]}}
            ]
        }}"#
    ))
    .expect("built-in sweep spec is valid")
}

/// Runs the built-in sweep once and returns its bench row plus the
/// per-session `(cycles, fb_digest, registry)` signature used for the
/// bit-identity checks.
fn bench_sweep_once(smoke: bool, fork: bool, workers: usize) -> (Run, Vec<(u64, u64, String)>) {
    let spec = bench_sweep_spec(smoke);
    let jobs = spec.expand().expect("built-in sweep expands");
    let (wall_ms, outcome) = timed(|| emerald::serve::sched::run_jobs(jobs, fork, workers, None));
    let sig = outcome
        .results
        .iter()
        .map(|r| (r.cycles, r.fb_digest, r.registry_json.clone()))
        .collect();
    let phases = PhaseTimes {
        setup_ms: 0.0,
        sim_ms: wall_ms,
        readback_ms: 0.0,
    };
    let run = Run {
        threads: workers,
        wall_ms,
        cycles: outcome.total_cycles,
        phases,
        profile: None,
        sessions: Some(outcome.results.len() as u64),
    };
    (run, sig)
}

/// `sweep_cold` / `sweep_forked` rows at 1/2/4/8 scheduler workers.
/// Every run must produce bit-identical per-session results (the
/// scheduler interleaving and the start mode are not allowed to leak into
/// simulated state), and the forked arm must beat the cold arm on wall
/// time. Aggregate-throughput scaling is asserted only on hosts with
/// enough real cores to express it.
fn bench_sweeps(smoke: bool) -> (Vec<Run>, Vec<Run>) {
    let worker_counts = [1usize, 2, 4, 8];
    let mut reference: Option<Vec<(u64, u64, String)>> = None;
    let mut cold = Vec::new();
    let mut forked = Vec::new();
    for fork in [false, true] {
        let name = if fork { "sweep_forked" } else { "sweep_cold" };
        for &workers in &worker_counts {
            let (run, sig) = bench_sweep_once(smoke, fork, workers);
            let sessions = run.sessions.expect("sweep rows carry sessions");
            eprintln!(
                "{name} w={workers}: {:.1} ms, {sessions} sessions ({:.1}/s), {} summed cycles",
                run.wall_ms,
                sessions as f64 / (run.wall_ms / 1e3),
                run.cycles
            );
            match &reference {
                None => reference = Some(sig),
                Some(r) => assert_eq!(
                    *r, sig,
                    "{name} at {workers} workers diverged from the reference sessions"
                ),
            }
            if fork { &mut forked } else { &mut cold }.push(run);
        }
    }
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if host >= 4 {
        let cps = |r: &Run| r.cycles as f64 / (r.wall_ms / 1e3);
        let (c1, c4) = (cps(&cold[0]), cps(&cold[2]));
        assert!(
            c4 >= 3.0 * c1,
            "cold sweep aggregate throughput scaled only {:.2}x from 1 to 4 workers",
            c4 / c1
        );
    } else {
        eprintln!("sweep 1->4 worker scaling check skipped: host has {host} core(s)");
    }
    let total = |runs: &[Run]| runs.iter().map(|r| r.wall_ms).sum::<f64>();
    assert!(
        total(&forked) < total(&cold),
        "forked sweep ({:.1} ms total) must beat cold ({:.1} ms total) — \
         one shared warmup plus restores is cheaper than eight warmups",
        total(&forked),
        total(&cold)
    );
    (cold, forked)
}

/// `--sweep FILE` client mode: run a sweep spec through the serve engine,
/// streaming the same protocol records as `emerald_serve --spec FILE` to
/// stdout, with a human summary on stderr.
fn sweep_client_mode(path: &str, workers: usize) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read sweep spec {path}: {e}"));
    let spec = emerald::serve::SweepSpec::parse(&text).unwrap_or_else(|e| {
        eprintln!("invalid sweep spec {path}: {e}");
        std::process::exit(1);
    });
    let stream = |r: &emerald::serve::SessionResult| {
        println!("{}", emerald::serve::proto::session_record(r));
    };
    let (wall_ms, outcome) =
        timed(|| emerald::serve::run_sweep(&spec, workers, Some(&stream)).expect("sweep run"));
    let sessions = outcome.results.len();
    eprintln!(
        "sweep {}: {sessions} sessions, {} prefixes, {} summed cycles, {wall_ms:.1} ms at {workers} workers ({:.1} sessions/s)",
        spec.name,
        outcome.prefixes,
        outcome.total_cycles,
        sessions as f64 / (wall_ms / 1e3)
    );
}

fn bench_soc_frame(threads: usize, smoke: bool) -> Run {
    use emerald::soc::experiment::{run_cell, MemCfgKind, RunParams};
    // `run_cell` builds its GPU configs internally, which seed their
    // thread knob from the environment.
    let (setup_ms, (m, params)) = timed(|| {
        std::env::set_var("EMERALD_THREADS", threads.to_string());
        let m = emerald::scene::workloads::m_models().swap_remove(1);
        let params = RunParams {
            width: if smoke { 48 } else { 64 },
            height: if smoke { 32 } else { 48 },
            frames: 1,
            dram: DramConfig::lpddr3_1333(),
            gpu_frame_period: 200_000,
            probe_window: None,
            max_cycles_per_frame: 500_000_000,
        };
        (m, params)
    });
    emerald::obs::prof::reset();
    let (sim_ms, res) = timed(|| run_cell(&m, MemCfgKind::Dcb, &params));
    let profile = take_profile();
    std::env::remove_var("EMERALD_THREADS");
    let phases = PhaseTimes {
        setup_ms,
        sim_ms,
        readback_ms: 0.0,
    };
    Run {
        threads,
        wall_ms: phases.total_ms(),
        cycles: res.avg_total_cycles as u64,
        phases,
        profile,
        sessions: None,
    }
}
