//! JSON-line sweep server over stdin/stdout.
//!
//! Reads one request per line, writes one or more response records per
//! request, and streams per-session results as they complete (see
//! `emerald_serve::proto` for the protocol). Exits on `shutdown` or EOF.
//!
//! ```text
//! $ echo '{"op": "ping"}' | emerald_serve
//! {"ok":true,"ev":"pong"}
//!
//! $ emerald_serve < requests.jsonl > results.jsonl
//! $ emerald_serve --spec sweeps/ci_smoke.json --workers 4   # one-shot
//! ```
//!
//! `--spec FILE` runs a single sweep from a spec file without the
//! protocol loop: results stream to stdout, then the process exits
//! (nonzero if the spec is invalid). With `--check` the spec is only
//! validated and expanded — every axis coordinate is resolved against
//! the real config/workload tables — without simulating anything.

use std::io::{self, BufReader};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let spec_path = args
        .iter()
        .position(|a| a == "--spec")
        .and_then(|i| args.get(i + 1).cloned());
    let check_only = args.iter().any(|a| a == "--check");
    let workers = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .map(|w| w.parse::<usize>().expect("--workers wants an integer"))
        .unwrap_or(1);

    if let Some(path) = spec_path {
        // One-shot mode: synthesize a single sweep request from the file.
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read sweep spec {path}: {e}"));
        let spec = emerald_serve::SweepSpec::parse(&text).unwrap_or_else(|e| {
            eprintln!("invalid sweep spec {path}: {e}");
            std::process::exit(1);
        });
        if check_only {
            println!("{path}: ok ({} jobs)", spec.job_count());
            return;
        }
        let request = format!(
            "{{\"op\":\"sweep\",\"workers\":{workers},\"spec\":{}}}\n",
            text.replace('\n', " ")
        );
        let _ = spec; // validated above for the early, readable error
        emerald_serve::proto::serve(request.as_bytes(), io::stdout())
            .expect("serve one-shot sweep");
        return;
    }

    let stdin = io::stdin();
    emerald_serve::proto::serve(BufReader::new(stdin.lock()), io::stdout())
        .expect("serve protocol loop");
}
