//! Benchmark regression gate over two `emerald-bench-v1` reports.
//!
//! ```text
//! bench_diff BASELINE.json CURRENT.json [--no-wall] [--threshold PCT]
//!            [--threshold-for WORKLOAD=PCT]...
//! ```
//!
//! Exit codes: `0` no regression, `1` regression found, `2` usage or
//! parse error. CI runs this against the committed
//! `scripts/bench_baseline.json` with `--no-wall` (cycles are
//! deterministic across machines; wall time is not).

use emerald::bench_diff::{diff_reports, DiffOptions};
use emerald_common::json::Json;

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff BASELINE.json CURRENT.json [--no-wall] [--threshold PCT] \
         [--threshold-for WORKLOAD=PCT]..."
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("bench_diff: {msg}");
    std::process::exit(2);
}

fn load(path: &str) -> Json {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    Json::parse(&text).unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut opts = DiffOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--no-wall" => opts.no_wall = true,
            "--threshold" => {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| usage());
                opts.threshold_pct =
                    Some(v.parse().unwrap_or_else(|_| fail("bad --threshold value")));
            }
            "--threshold-for" => {
                i += 1;
                let v = args.get(i).unwrap_or_else(|| usage());
                let (name, pct) = v
                    .split_once('=')
                    .unwrap_or_else(|| fail("--threshold-for wants WORKLOAD=PCT"));
                opts.per_workload_pct.insert(
                    name.to_string(),
                    pct.parse()
                        .unwrap_or_else(|_| fail("bad --threshold-for percent")),
                );
            }
            a if a.starts_with("--") => usage(),
            _ => paths.push(args[i].clone()),
        }
        i += 1;
    }
    if paths.len() != 2 {
        usage();
    }
    let baseline = load(&paths[0]);
    let current = load(&paths[1]);
    let report = diff_reports(&baseline, &current, &opts).unwrap_or_else(|e| fail(&e));
    for line in &report.lines {
        let tag = if line.regressed {
            "REGRESSION"
        } else {
            "      "
        };
        eprintln!(
            "{tag} {:>24} t={}: {}",
            line.workload, line.threads, line.message
        );
    }
    if report.regressed() {
        eprintln!(
            "bench_diff: {} regression(s) vs {}",
            report.regressions().len(),
            paths[0]
        );
        std::process::exit(1);
    }
    eprintln!("bench_diff: no regressions vs {}", paths[0]);
}
