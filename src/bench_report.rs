//! Benchmark report model and serializer for `emerald_bench`.
//!
//! The `emerald-bench-v1` schema is consumed by `scripts/bench.sh`, CI
//! and the trajectory notes in `BENCH_frame.json`; changes must stay
//! additive. The per-run `phases` object breaks wall time into setup
//! (scene upload, config construction), simulation proper, and readback/
//! verification — added to localize the observed >1-thread slowdown
//! (speedup 0.23–0.74) to the phase that actually regresses. The
//! top-level `pool_dispatch` array records the measured cost of an empty
//! `CorePool::run` per pool width — the fixed handoff overhead the
//! adaptive dispatcher weighs against useful parallel work.

/// Wall-clock breakdown of one benchmark run, in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Building memories, configs and uploading the scene.
    pub setup_ms: f64,
    /// The simulation loop itself.
    pub sim_ms: f64,
    /// Framebuffer readback and determinism verification.
    pub readback_ms: f64,
}

impl PhaseTimes {
    /// Total accounted wall time.
    pub fn total_ms(&self) -> f64 {
        self.setup_ms + self.sim_ms + self.readback_ms
    }
}

/// One benchmark run at a fixed worker-thread count.
#[derive(Debug, Clone)]
pub struct Run {
    /// Worker threads (`EMERALD_THREADS`) used.
    pub threads: usize,
    /// End-to-end wall time in milliseconds.
    pub wall_ms: f64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Per-phase breakdown of `wall_ms`.
    pub phases: PhaseTimes,
    /// Host self-profile of the sim phase (`EMERALD_PROFILE=1` only).
    pub profile: Option<emerald_obs::HostProfile>,
    /// Concurrent sessions for sweep workloads (`sweep_*` rows): `cycles`
    /// is then the *sum* across sessions and the serializer adds a
    /// `sessions_per_sec` throughput column. `None` for single-sim rows —
    /// the schema stays additive.
    pub sessions: Option<u64>,
}

/// A named workload with its thread-scaling runs (first run is the
/// 1-thread baseline the speedup column is relative to).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Stable workload name (e.g. `render_cs1_frame`).
    pub name: &'static str,
    /// Runs in increasing thread order.
    pub runs: Vec<Run>,
}

/// One pool dispatch-latency measurement: the cost of an *empty*
/// `CorePool::run` (generation publish, worker wake, barrier join) at a
/// given pool width. This is the per-simulated-cycle overhead a workload
/// pays whenever the adaptive dispatcher engages the pool.
#[derive(Debug, Clone, Copy)]
pub struct PoolDispatch {
    /// Pool parallelism (caller + workers).
    pub threads: usize,
    /// Nanoseconds per empty `run` call, averaged over many iterations.
    pub ns_per_run: f64,
}

/// Serializes one run's host self-profile as a JSON object (no trailing
/// newline). `sim_ms` contextualizes pool utilization.
fn profile_json(p: &emerald_obs::HostProfile, sim_ms: f64) -> String {
    use emerald_obs::prof::{active_bucket_label, HostPhase, ACTIVE_BUCKETS};
    let mut s = String::from("{ ");
    s.push_str(&format!(
        "\"ticks\": {}, \"sampled_ticks\": {}, \"loop_ms\": {:.3}, ",
        p.ticks,
        p.sampled,
        p.loop_ns as f64 / 1e6
    ));
    s.push_str("\"phases_ns\": { ");
    let mut first = true;
    for ph in HostPhase::all() {
        let ns = p.phase_ns[ph as usize];
        if ns == 0 {
            continue;
        }
        if !first {
            s.push_str(", ");
        }
        first = false;
        s.push_str(&format!("\"{}\": {}", ph.name(), ns));
    }
    s.push_str(" }, ");
    s.push_str(&format!(
        "\"phase_sum_ms\": {:.3}, ",
        p.total_phase_ns() as f64 / 1e6
    ));
    s.push_str(&format!(
        "\"gpu_cycles\": {}, \"gpu_zero_active_cycles\": {}, \"gpu_skippable_cycles\": {}, \"gpu_skippable_frac\": {:.4}, ",
        p.gpu_cycles,
        p.gpu_zero_active,
        p.gpu_skippable,
        p.gpu_skippable_frac()
    ));
    s.push_str(&format!(
        "\"soc_cycles\": {}, \"soc_skippable_cycles\": {}, \"soc_skippable_frac\": {:.4}, ",
        p.soc_cycles,
        p.soc_skippable,
        p.soc_skippable_frac()
    ));
    s.push_str(&format!(
        "\"cpu_batches\": {}, \"cpu_batch_cycles\": {}, ",
        p.cpu_batches, p.cpu_batch_cycles
    ));
    s.push_str("\"active_hist\": { ");
    for b in 0..ACTIVE_BUCKETS {
        if b > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "\"{}\": {}",
            active_bucket_label(b),
            p.active_hist[b]
        ));
    }
    s.push_str(" }, ");
    let busy_ms: Vec<String> = p
        .pool_busy_ns
        .iter()
        .map(|&ns| format!("{:.3}", ns as f64 / 1e6))
        .collect();
    let busy_total_ms = p.pool_busy_ns.iter().sum::<u64>() as f64 / 1e6;
    let util = if p.pool_threads > 0 && sim_ms > 0.0 {
        busy_total_ms / (p.pool_threads as f64 * sim_ms)
    } else {
        0.0
    };
    s.push_str(&format!(
        "\"pool\": {{ \"threads\": {}, \"runs\": {}, \"busy_ms\": [{}], \"utilization\": {:.4}, \"imbalance\": {:.3} }}",
        p.pool_threads,
        p.pool_runs,
        busy_ms.join(", "),
        util,
        p.pool_imbalance()
    ));
    s.push_str(" }");
    s
}

/// Serializes the report in the `emerald-bench-v1` schema. The output is
/// strict JSON (validated by `tests/bench_schema.rs` against the in-tree
/// parser). `profile_overhead_pct` is the measured wall-clock cost of
/// running with `EMERALD_PROFILE=1`, present only when it was measured.
pub fn to_json(
    workloads: &[Workload],
    pool_dispatch: &[PoolDispatch],
    smoke: bool,
    profile_overhead_pct: Option<f64>,
) -> String {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"emerald-bench-v1\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str(&format!("  \"host_threads\": {host},\n"));
    if let Some(pct) = profile_overhead_pct {
        s.push_str(&format!("  \"profile_overhead_pct\": {pct:.2},\n"));
    }
    s.push_str("  \"workloads\": [\n");
    for (wi, w) in workloads.iter().enumerate() {
        s.push_str(&format!("    {{ \"name\": \"{}\", \"runs\": [\n", w.name));
        let base_ms = w.runs.first().map(|r| r.wall_ms).unwrap_or(0.0);
        for (ri, r) in w.runs.iter().enumerate() {
            let cps = if r.wall_ms > 0.0 {
                r.cycles as f64 / (r.wall_ms / 1e3)
            } else {
                0.0
            };
            let speedup = if r.wall_ms > 0.0 {
                base_ms / r.wall_ms
            } else {
                0.0
            };
            let profile = match &r.profile {
                Some(p) => format!(", \"profile\": {}", profile_json(p, r.phases.sim_ms)),
                None => String::new(),
            };
            let sessions = match r.sessions {
                Some(n) => {
                    let sps = if r.wall_ms > 0.0 {
                        n as f64 / (r.wall_ms / 1e3)
                    } else {
                        0.0
                    };
                    format!(", \"sessions\": {n}, \"sessions_per_sec\": {sps:.2}")
                }
                None => String::new(),
            };
            s.push_str(&format!(
                "      {{ \"threads\": {}, \"wall_ms\": {:.3}, \"cycles\": {}, \"cycles_per_sec\": {:.1}, \"speedup_vs_1t\": {:.3}{sessions}, \"phases\": {{ \"setup_ms\": {:.3}, \"sim_ms\": {:.3}, \"readback_ms\": {:.3} }}{} }}{}\n",
                r.threads,
                r.wall_ms,
                r.cycles,
                cps,
                speedup,
                r.phases.setup_ms,
                r.phases.sim_ms,
                r.phases.readback_ms,
                profile,
                if ri + 1 < w.runs.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "    ] }}{}\n",
            if wi + 1 < workloads.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"pool_dispatch\": [\n");
    for (pi, p) in pool_dispatch.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"threads\": {}, \"ns_per_run\": {:.1} }}{}\n",
            p.threads,
            p.ns_per_run,
            if pi + 1 < pool_dispatch.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use emerald_common::json::Json;

    fn sample() -> Vec<Workload> {
        vec![Workload {
            name: "w",
            runs: vec![
                Run {
                    threads: 1,
                    wall_ms: 10.0,
                    cycles: 1000,
                    phases: PhaseTimes {
                        setup_ms: 2.0,
                        sim_ms: 7.0,
                        readback_ms: 1.0,
                    },
                    profile: None,
                    sessions: None,
                },
                Run {
                    threads: 2,
                    wall_ms: 20.0,
                    cycles: 1000,
                    phases: PhaseTimes {
                        setup_ms: 2.0,
                        sim_ms: 17.0,
                        readback_ms: 1.0,
                    },
                    profile: None,
                    sessions: None,
                },
            ],
        }]
    }

    fn sample_profile() -> emerald_obs::HostProfile {
        let mut p = emerald_obs::HostProfile {
            ticks: 6100,
            sampled: 100,
            gpu_cycles: 6100,
            gpu_zero_active: 900,
            gpu_skippable: 600,
            soc_cycles: 6100,
            soc_skippable: 1220,
            pool_threads: 2,
            pool_runs: 5000,
            pool_busy_ns: vec![4_000_000, 2_000_000],
            ..Default::default()
        };
        p.phase_ns[emerald_obs::HostPhase::GpuExecute as usize] = 5_000_000;
        p.phase_ns[emerald_obs::HostPhase::GpuCommit as usize] = 1_000_000;
        p.active_hist[0] = 900;
        p.active_hist[2] = 5200;
        p
    }

    #[test]
    fn report_is_strict_json_with_v1_schema() {
        let dispatch = [PoolDispatch {
            threads: 2,
            ns_per_run: 850.0,
        }];
        let doc = Json::parse(&to_json(&sample(), &dispatch, true, None)).expect("valid JSON");
        assert_eq!(
            doc.get("schema").unwrap().as_str().unwrap(),
            "emerald-bench-v1"
        );
        let runs = doc.get("workloads").unwrap().as_arr().unwrap()[0]
            .get("runs")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].get("speedup_vs_1t").unwrap().as_num().unwrap(), 0.5);
        let phases = runs[0].get("phases").unwrap();
        assert_eq!(phases.get("sim_ms").unwrap().as_num().unwrap(), 7.0);
        let pd = doc.get("pool_dispatch").unwrap().as_arr().unwrap();
        assert_eq!(pd.len(), 1);
        assert_eq!(pd[0].get("threads").unwrap().as_num().unwrap(), 2.0);
        assert_eq!(pd[0].get("ns_per_run").unwrap().as_num().unwrap(), 850.0);
    }

    #[test]
    fn empty_pool_dispatch_is_valid_json() {
        let doc = Json::parse(&to_json(&sample(), &[], true, None)).expect("valid JSON");
        assert!(doc
            .get("pool_dispatch")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
        assert!(doc.get("profile_overhead_pct").is_none());
    }

    #[test]
    fn profile_block_serializes_when_present() {
        let mut wls = sample();
        wls[0].runs[0].profile = Some(sample_profile());
        let doc = Json::parse(&to_json(&wls, &[], true, Some(2.5))).expect("valid JSON");
        assert_eq!(
            doc.get("profile_overhead_pct").unwrap().as_num().unwrap(),
            2.5
        );
        let runs = doc.get("workloads").unwrap().as_arr().unwrap()[0]
            .get("runs")
            .unwrap()
            .as_arr()
            .unwrap();
        let prof = runs[0].get("profile").expect("run 0 has a profile");
        assert!(runs[1].get("profile").is_none(), "run 1 has none");
        assert_eq!(prof.get("ticks").unwrap().as_num().unwrap(), 6100.0);
        let phases = prof.get("phases_ns").unwrap();
        assert_eq!(
            phases.get("gpu.execute").unwrap().as_num().unwrap(),
            5_000_000.0
        );
        assert!(phases.get("gpu.dram").is_none(), "zero phases elided");
        let gfrac = prof.get("gpu_skippable_frac").unwrap().as_num().unwrap();
        assert!((gfrac - 600.0 / 6100.0).abs() < 1e-4, "gfrac {gfrac}");
        let frac = prof.get("soc_skippable_frac").unwrap().as_num().unwrap();
        assert!((frac - 0.2).abs() < 1e-9);
        let hist = prof.get("active_hist").unwrap();
        assert_eq!(hist.get("2").unwrap().as_num().unwrap(), 5200.0);
        assert_eq!(hist.get("64+").unwrap().as_num().unwrap(), 0.0);
        let pool = prof.get("pool").unwrap();
        assert_eq!(pool.get("threads").unwrap().as_num().unwrap(), 2.0);
        assert_eq!(pool.get("busy_ms").unwrap().as_arr().unwrap().len(), 2);
        // 6 ms busy over 2 threads × 7 ms sim = 42.86 % utilization.
        let util = pool.get("utilization").unwrap().as_num().unwrap();
        assert!((util - 6.0 / 14.0).abs() < 1e-3, "util {util}");
        let imb = pool.get("imbalance").unwrap().as_num().unwrap();
        assert!((imb - 4.0 / 3.0).abs() < 1e-3, "imbalance {imb}");
    }

    #[test]
    fn phase_times_sum() {
        let p = PhaseTimes {
            setup_ms: 1.0,
            sim_ms: 2.0,
            readback_ms: 3.0,
        };
        assert!((p.total_ms() - 6.0).abs() < 1e-12);
    }
}
