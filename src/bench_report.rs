//! Benchmark report model and serializer for `emerald_bench`.
//!
//! The `emerald-bench-v1` schema is consumed by `scripts/bench.sh`, CI
//! and the trajectory notes in `BENCH_frame.json`; changes must stay
//! additive. The per-run `phases` object breaks wall time into setup
//! (scene upload, config construction), simulation proper, and readback/
//! verification — added to localize the observed >1-thread slowdown
//! (speedup 0.23–0.74) to the phase that actually regresses. The
//! top-level `pool_dispatch` array records the measured cost of an empty
//! `CorePool::run` per pool width — the fixed handoff overhead the
//! adaptive dispatcher weighs against useful parallel work.

/// Wall-clock breakdown of one benchmark run, in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Building memories, configs and uploading the scene.
    pub setup_ms: f64,
    /// The simulation loop itself.
    pub sim_ms: f64,
    /// Framebuffer readback and determinism verification.
    pub readback_ms: f64,
}

impl PhaseTimes {
    /// Total accounted wall time.
    pub fn total_ms(&self) -> f64 {
        self.setup_ms + self.sim_ms + self.readback_ms
    }
}

/// One benchmark run at a fixed worker-thread count.
#[derive(Debug, Clone)]
pub struct Run {
    /// Worker threads (`EMERALD_THREADS`) used.
    pub threads: usize,
    /// End-to-end wall time in milliseconds.
    pub wall_ms: f64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Per-phase breakdown of `wall_ms`.
    pub phases: PhaseTimes,
}

/// A named workload with its thread-scaling runs (first run is the
/// 1-thread baseline the speedup column is relative to).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Stable workload name (e.g. `render_cs1_frame`).
    pub name: &'static str,
    /// Runs in increasing thread order.
    pub runs: Vec<Run>,
}

/// One pool dispatch-latency measurement: the cost of an *empty*
/// `CorePool::run` (generation publish, worker wake, barrier join) at a
/// given pool width. This is the per-simulated-cycle overhead a workload
/// pays whenever the adaptive dispatcher engages the pool.
#[derive(Debug, Clone, Copy)]
pub struct PoolDispatch {
    /// Pool parallelism (caller + workers).
    pub threads: usize,
    /// Nanoseconds per empty `run` call, averaged over many iterations.
    pub ns_per_run: f64,
}

/// Serializes the report in the `emerald-bench-v1` schema. The output is
/// strict JSON (validated by `tests/bench_schema.rs` against the in-tree
/// parser).
pub fn to_json(workloads: &[Workload], pool_dispatch: &[PoolDispatch], smoke: bool) -> String {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"emerald-bench-v1\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str(&format!("  \"host_threads\": {host},\n"));
    s.push_str("  \"workloads\": [\n");
    for (wi, w) in workloads.iter().enumerate() {
        s.push_str(&format!("    {{ \"name\": \"{}\", \"runs\": [\n", w.name));
        let base_ms = w.runs.first().map(|r| r.wall_ms).unwrap_or(0.0);
        for (ri, r) in w.runs.iter().enumerate() {
            let cps = if r.wall_ms > 0.0 {
                r.cycles as f64 / (r.wall_ms / 1e3)
            } else {
                0.0
            };
            let speedup = if r.wall_ms > 0.0 {
                base_ms / r.wall_ms
            } else {
                0.0
            };
            s.push_str(&format!(
                "      {{ \"threads\": {}, \"wall_ms\": {:.3}, \"cycles\": {}, \"cycles_per_sec\": {:.1}, \"speedup_vs_1t\": {:.3}, \"phases\": {{ \"setup_ms\": {:.3}, \"sim_ms\": {:.3}, \"readback_ms\": {:.3} }} }}{}\n",
                r.threads,
                r.wall_ms,
                r.cycles,
                cps,
                speedup,
                r.phases.setup_ms,
                r.phases.sim_ms,
                r.phases.readback_ms,
                if ri + 1 < w.runs.len() { "," } else { "" }
            ));
        }
        s.push_str(&format!(
            "    ] }}{}\n",
            if wi + 1 < workloads.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"pool_dispatch\": [\n");
    for (pi, p) in pool_dispatch.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"threads\": {}, \"ns_per_run\": {:.1} }}{}\n",
            p.threads,
            p.ns_per_run,
            if pi + 1 < pool_dispatch.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use emerald_common::json::Json;

    fn sample() -> Vec<Workload> {
        vec![Workload {
            name: "w",
            runs: vec![
                Run {
                    threads: 1,
                    wall_ms: 10.0,
                    cycles: 1000,
                    phases: PhaseTimes {
                        setup_ms: 2.0,
                        sim_ms: 7.0,
                        readback_ms: 1.0,
                    },
                },
                Run {
                    threads: 2,
                    wall_ms: 20.0,
                    cycles: 1000,
                    phases: PhaseTimes {
                        setup_ms: 2.0,
                        sim_ms: 17.0,
                        readback_ms: 1.0,
                    },
                },
            ],
        }]
    }

    #[test]
    fn report_is_strict_json_with_v1_schema() {
        let dispatch = [PoolDispatch {
            threads: 2,
            ns_per_run: 850.0,
        }];
        let doc = Json::parse(&to_json(&sample(), &dispatch, true)).expect("valid JSON");
        assert_eq!(
            doc.get("schema").unwrap().as_str().unwrap(),
            "emerald-bench-v1"
        );
        let runs = doc.get("workloads").unwrap().as_arr().unwrap()[0]
            .get("runs")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].get("speedup_vs_1t").unwrap().as_num().unwrap(), 0.5);
        let phases = runs[0].get("phases").unwrap();
        assert_eq!(phases.get("sim_ms").unwrap().as_num().unwrap(), 7.0);
        let pd = doc.get("pool_dispatch").unwrap().as_arr().unwrap();
        assert_eq!(pd.len(), 1);
        assert_eq!(pd[0].get("threads").unwrap().as_num().unwrap(), 2.0);
        assert_eq!(pd[0].get("ns_per_run").unwrap().as_num().unwrap(), 850.0);
    }

    #[test]
    fn empty_pool_dispatch_is_valid_json() {
        let doc = Json::parse(&to_json(&sample(), &[], true)).expect("valid JSON");
        assert!(doc
            .get("pool_dispatch")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn phase_times_sum() {
        let p = PhaseTimes {
            setup_ms: 1.0,
            sim_ms: 2.0,
            readback_ms: 3.0,
        };
        assert!((p.total_ms() - 6.0).abs() < 1e-12);
    }
}
