//! Benchmark regression differ: compares two `emerald-bench-v1` reports.
//!
//! `bench_diff` (the binary in `src/bin/bench_diff.rs`) feeds two report
//! files through [`diff_reports`] and exits nonzero on regression. Two
//! axes are checked per `(workload, threads)` run:
//!
//! * **cycles** — simulated cycle counts are deterministic, so *any*
//!   difference is a model change and always flagged. CI diffs against
//!   the committed `scripts/bench_baseline.json` with `--no-wall`, which
//!   makes this the only gate: it is machine-independent.
//! * **wall time** — `sim_ms` may regress by at most a per-workload
//!   threshold (default 25 %). Only meaningful when both reports come
//!   from the same machine; suppressed by [`DiffOptions::no_wall`].
//!
//! A run present in the baseline but missing from the current report is a
//! regression (a silently dropped workload must not pass CI); new runs in
//! the current report are informational only, so reports can grow.

use emerald_common::json::Json;
use std::collections::BTreeMap;

/// Comparison options.
#[derive(Debug, Clone, Default)]
pub struct DiffOptions {
    /// Skip wall-time comparison (cross-machine diffs; cycles only).
    pub no_wall: bool,
    /// Default allowed `sim_ms` regression in percent (25 when `None`).
    pub threshold_pct: Option<f64>,
    /// Per-workload threshold overrides, percent.
    pub per_workload_pct: BTreeMap<String, f64>,
}

impl DiffOptions {
    fn threshold_for(&self, workload: &str) -> f64 {
        self.per_workload_pct
            .get(workload)
            .copied()
            .unwrap_or(self.threshold_pct.unwrap_or(25.0))
    }
}

/// One comparison line.
#[derive(Debug, Clone)]
pub struct DiffLine {
    /// Workload name.
    pub workload: String,
    /// Thread count of the run.
    pub threads: u64,
    /// Human-readable comparison result.
    pub message: String,
    /// Whether this line is a regression.
    pub regressed: bool,
}

/// The full comparison result.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every comparison performed, in report order.
    pub lines: Vec<DiffLine>,
}

impl DiffReport {
    /// True when any line regressed.
    pub fn regressed(&self) -> bool {
        self.lines.iter().any(|l| l.regressed)
    }

    /// Lines that regressed.
    pub fn regressions(&self) -> Vec<&DiffLine> {
        self.lines.iter().filter(|l| l.regressed).collect()
    }
}

/// A run's identity within a report: `(workload, threads)`.
type RunKey = (String, u64);
/// A run's comparable numbers: `(cycles, sim_ms)`.
type RunMetrics = (u64, f64);

/// Flattens a report into `(workload, threads) -> (cycles, sim_ms)`.
fn index_runs(doc: &Json) -> Result<BTreeMap<RunKey, RunMetrics>, String> {
    let schema = doc
        .get("schema")
        .and_then(|s| s.as_str())
        .ok_or("missing schema tag")?;
    if schema != "emerald-bench-v1" {
        return Err(format!("unsupported schema {schema:?}"));
    }
    let mut out = BTreeMap::new();
    let workloads = doc
        .get("workloads")
        .and_then(|w| w.as_arr())
        .ok_or("missing workloads array")?;
    for w in workloads {
        let name = w
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or("workload missing name")?
            .to_string();
        let runs = w
            .get("runs")
            .and_then(|r| r.as_arr())
            .ok_or("workload missing runs")?;
        for r in runs {
            let threads = r
                .get("threads")
                .and_then(|t| t.as_num())
                .ok_or("run missing threads")? as u64;
            let cycles = r
                .get("cycles")
                .and_then(|c| c.as_num())
                .ok_or("run missing cycles")? as u64;
            let sim_ms = r
                .get("phases")
                .and_then(|p| p.get("sim_ms"))
                .and_then(|m| m.as_num())
                .ok_or("run missing phases.sim_ms")?;
            out.insert((name.clone(), threads), (cycles, sim_ms));
        }
    }
    Ok(out)
}

/// Compares `current` against `baseline`. Returns `Err` on malformed
/// input or mismatched smoke flags (a smoke report must never be judged
/// against a full one — the workload sizes differ).
pub fn diff_reports(
    baseline: &Json,
    current: &Json,
    opts: &DiffOptions,
) -> Result<DiffReport, String> {
    let base_smoke = baseline.get("smoke").and_then(|s| s.as_bool());
    let cur_smoke = current.get("smoke").and_then(|s| s.as_bool());
    if base_smoke != cur_smoke {
        return Err(format!(
            "smoke flags differ (baseline {base_smoke:?}, current {cur_smoke:?}) — \
             reports are not comparable"
        ));
    }
    let base = index_runs(baseline)?;
    let cur = index_runs(current)?;
    let mut report = DiffReport::default();
    for ((workload, threads), (bc, bms)) in &base {
        let Some((cc, cms)) = cur.get(&(workload.clone(), *threads)) else {
            report.lines.push(DiffLine {
                workload: workload.clone(),
                threads: *threads,
                message: "run missing from current report".to_string(),
                regressed: true,
            });
            continue;
        };
        if cc != bc {
            report.lines.push(DiffLine {
                workload: workload.clone(),
                threads: *threads,
                message: format!("cycles changed: {bc} -> {cc}"),
                regressed: true,
            });
            continue;
        }
        if !opts.no_wall && *bms > 0.0 {
            let pct = (cms - bms) / bms * 100.0;
            let limit = opts.threshold_for(workload);
            if pct > limit {
                report.lines.push(DiffLine {
                    workload: workload.clone(),
                    threads: *threads,
                    message: format!(
                        "sim_ms regressed {pct:.1} % ({bms:.1} -> {cms:.1} ms, limit {limit:.0} %)"
                    ),
                    regressed: true,
                });
                continue;
            }
            report.lines.push(DiffLine {
                workload: workload.clone(),
                threads: *threads,
                message: format!("ok: cycles {cc}, sim_ms {bms:.1} -> {cms:.1} ({pct:+.1} %)"),
                regressed: false,
            });
        } else {
            report.lines.push(DiffLine {
                workload: workload.clone(),
                threads: *threads,
                message: format!("ok: cycles {cc}"),
                regressed: false,
            });
        }
    }
    for (workload, threads) in cur.keys() {
        if !base.contains_key(&(workload.clone(), *threads)) {
            report.lines.push(DiffLine {
                workload: workload.clone(),
                threads: *threads,
                message: "new run (not in baseline)".to_string(),
                regressed: false,
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(smoke: bool, runs: &[(&str, u64, u64, f64)]) -> Json {
        let mut by_wl: BTreeMap<&str, Vec<(u64, u64, f64)>> = BTreeMap::new();
        for (w, t, c, ms) in runs {
            by_wl.entry(w).or_default().push((*t, *c, *ms));
        }
        let mut s =
            format!("{{ \"schema\": \"emerald-bench-v1\", \"smoke\": {smoke}, \"workloads\": [");
        let mut first_w = true;
        for (w, rs) in by_wl {
            if !first_w {
                s.push(',');
            }
            first_w = false;
            s.push_str(&format!("{{ \"name\": \"{w}\", \"runs\": ["));
            for (i, (t, c, ms)) in rs.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{ \"threads\": {t}, \"cycles\": {c}, \"phases\": {{ \"sim_ms\": {ms} }} }}"
                ));
            }
            s.push_str("] }");
        }
        s.push_str("] }");
        Json::parse(&s).expect("synthetic report parses")
    }

    #[test]
    fn identical_reports_pass() {
        let b = report(true, &[("w", 1, 100, 10.0), ("w", 4, 100, 5.0)]);
        let r = diff_reports(&b, &b, &DiffOptions::default()).unwrap();
        assert!(!r.regressed());
        assert_eq!(r.lines.len(), 2);
    }

    #[test]
    fn cycle_change_is_always_a_regression() {
        let b = report(true, &[("w", 1, 100, 10.0)]);
        let c = report(true, &[("w", 1, 101, 1.0)]);
        let r = diff_reports(&b, &c, &DiffOptions::default()).unwrap();
        assert!(r.regressed());
        assert!(r.regressions()[0].message.contains("cycles changed"));
        // --no-wall must not suppress it.
        let opts = DiffOptions {
            no_wall: true,
            ..Default::default()
        };
        assert!(diff_reports(&b, &c, &opts).unwrap().regressed());
    }

    #[test]
    fn wall_regression_respects_threshold_and_no_wall() {
        let b = report(true, &[("w", 1, 100, 10.0)]);
        let c = report(true, &[("w", 1, 100, 13.0)]);
        // +30 % > default 25 %: regression.
        assert!(diff_reports(&b, &c, &DiffOptions::default())
            .unwrap()
            .regressed());
        // Raised default threshold passes.
        let lax = DiffOptions {
            threshold_pct: Some(50.0),
            ..Default::default()
        };
        assert!(!diff_reports(&b, &c, &lax).unwrap().regressed());
        // Per-workload override beats the default.
        let mut per = BTreeMap::new();
        per.insert("w".to_string(), 50.0);
        let pw = DiffOptions {
            per_workload_pct: per,
            ..Default::default()
        };
        assert!(!diff_reports(&b, &c, &pw).unwrap().regressed());
        // --no-wall ignores wall time entirely.
        let nw = DiffOptions {
            no_wall: true,
            ..Default::default()
        };
        assert!(!diff_reports(&b, &c, &nw).unwrap().regressed());
    }

    #[test]
    fn missing_run_regresses_but_new_run_does_not() {
        let b = report(true, &[("w", 1, 100, 10.0), ("w", 4, 100, 5.0)]);
        let c = report(true, &[("w", 1, 100, 10.0), ("x", 1, 7, 1.0)]);
        let r = diff_reports(&b, &c, &DiffOptions::default()).unwrap();
        let regs = r.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!((regs[0].workload.as_str(), regs[0].threads), ("w", 4));
        assert!(r
            .lines
            .iter()
            .any(|l| l.workload == "x" && !l.regressed && l.message.contains("new run")));
    }

    #[test]
    fn smoke_mismatch_and_bad_schema_are_errors() {
        let b = report(true, &[("w", 1, 100, 10.0)]);
        let c = report(false, &[("w", 1, 100, 10.0)]);
        assert!(diff_reports(&b, &c, &DiffOptions::default()).is_err());
        let bad =
            Json::parse("{ \"schema\": \"other\", \"smoke\": true, \"workloads\": [] }").unwrap();
        assert!(diff_reports(&bad, &bad, &DiffOptions::default()).is_err());
    }

    #[test]
    fn faster_wall_time_is_not_a_regression() {
        let b = report(false, &[("w", 2, 42, 20.0)]);
        let c = report(false, &[("w", 2, 42, 8.0)]);
        let r = diff_reports(&b, &c, &DiffOptions::default()).unwrap();
        assert!(!r.regressed());
        assert!(r.lines[0].message.contains("-60.0 %"));
    }
}
