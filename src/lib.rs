//! # Emerald-rs
//!
//! A cycle-level, execution-driven GPU simulator with a **unified model
//! for graphics and GPGPU workloads**, integrated into a full-SoC system
//! model — a from-scratch Rust reproduction of *Emerald: Graphics Modeling
//! for SoC Systems* (Gubran & Aamodt, ISCA 2019).
//!
//! The crate is a façade re-exporting the workspace members:
//!
//! | Module | Crate | What it models |
//! |---|---|---|
//! | [`common`] | `emerald-common` | cycles, ids, stats, math, RNG |
//! | [`isa`] | `emerald-isa` | the shader ISA + graphics instructions |
//! | [`mem`] | `emerald-mem` | caches, DRAM, FR-FCFS / DASH / HMC |
//! | [`gpu`] | `emerald-gpu` | SIMT cores, L1s/L2, CTA dispatch |
//! | [`scene`] | `emerald-scene` | meshes, textures, cameras, workloads |
//! | [`core`] | `emerald-core` | the graphics pipeline + DFSL |
//! | [`soc`] | `emerald-soc` | CPU cluster, display, full system |
//! | [`obs`] | `emerald-obs` | metrics registry, event traces, timelines |
//! | [`serve`] | `emerald-serve` | session-parallel sweep engine + JSONL protocol |
//!
//! ## Quickstart: render a frame on the simulated GPU
//!
//! ```
//! use emerald::prelude::*;
//!
//! // Simulated memory, a small render target, and the GPU.
//! let mem = SharedMem::with_capacity(1 << 24);
//! let rt = RenderTarget::alloc(&mem, 64, 48);
//! rt.clear(&mem, [0.0, 0.0, 0.0, 1.0], 1.0);
//! let mut renderer = GpuRenderer::new(
//!     GpuConfig::tiny(),
//!     GfxConfig::case_study_2(),
//!     mem.clone(),
//!     rt,
//! );
//! let mut port = SimpleMemPort::new(MemorySystem::new(
//!     MemorySystemConfig::baseline(2, DramConfig::lpddr3_1600()),
//! ));
//!
//! // Bind a workload (procedural cube) and draw one frame.
//! let binding = SceneBinding::new(&mem, &emerald::scene::workloads::w_models()[2]);
//! renderer.draw(binding.draw_for_frame(0, 64.0 / 48.0, false));
//! let stats = renderer.run_frame(&mut port, 10_000_000);
//! assert!(stats.fragments > 0);
//! ```

pub mod bench_diff;
pub mod bench_report;

pub use emerald_common as common;
pub use emerald_core as core;
pub use emerald_gpu as gpu;
pub use emerald_isa as isa;
pub use emerald_mem as mem;
pub use emerald_obs as obs;
pub use emerald_scene as scene;
pub use emerald_serve as serve;
pub use emerald_soc as soc;

/// One-stop imports for examples and tests.
pub mod prelude {
    pub use emerald_common::math::{Mat4, Vec2, Vec3, Vec4};
    pub use emerald_common::types::{Cycle, TrafficSource};
    pub use emerald_core::session::SceneBinding;
    pub use emerald_core::shaders::{self, FsOptions};
    pub use emerald_core::state::{DrawCall, Topology, VertexBuffer};
    pub use emerald_core::{
        DfslConfig, DfslController, FrameStats, GfxConfig, GpuRenderer, RenderTarget, TextureDesc,
    };
    pub use emerald_gpu::{Gpu, GpuConfig, Kernel, SimpleMemPort};
    pub use emerald_isa::{assemble, Program, ProgramBuilder};
    pub use emerald_mem::dram::DramConfig;
    pub use emerald_mem::image::{MemImage, SharedMem};
    pub use emerald_mem::system::{MemorySystem, MemorySystemConfig};
    pub use emerald_obs::{Registry, Snapshot, TraceCat, WindowedSampler};
    pub use emerald_scene::{mesh, texture, workloads, Mesh, OrbitCamera, TextureData};
    pub use emerald_soc::{MemCfgKind, Soc, SocConfig};
}
