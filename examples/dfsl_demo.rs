//! DFSL in action: renders an orbiting-camera sequence of the W4 workload,
//! letting the controller evaluate WT sizes 1-6 and then run at the best —
//! a miniature of case study II's Figure 19.
//!
//! Run with: `cargo run --release --example dfsl_demo`

use emerald::prelude::*;

fn main() {
    let (w, h) = (256u32, 192u32);
    let wl = &emerald::scene::workloads::w_models()[3]; // W4 Suzanne
    let mem = SharedMem::with_capacity(1 << 27);
    let rt = RenderTarget::alloc(&mem, w, h);
    let mut r = GpuRenderer::new(
        GpuConfig::case_study_2(),
        GfxConfig::case_study_2(),
        mem.clone(),
        rt,
    );
    let mut port = SimpleMemPort::new(MemorySystem::new(MemorySystemConfig::baseline(
        4,
        DramConfig::lpddr3_1600(),
    )));
    let binding = SceneBinding::new(&mem, wl);

    let cfg = DfslConfig {
        min_wt: 1,
        max_wt: 6,
        run_frames: 6,
    };
    let mut dfsl = DfslController::new(cfg);
    println!("frame  phase       wt  cycles");
    for f in 0..(cfg.eval_frames() + cfg.run_frames) {
        let wt = dfsl.wt_for_frame();
        let phase = format!("{:?}", dfsl.phase());
        rt.clear(&mem, [0.0; 4], 1.0);
        r.set_wt(wt);
        r.draw(binding.draw_for_frame(f, w as f32 / h as f32, false));
        let s = r.run_frame(&mut port, 200_000_000);
        dfsl.observe(s.cycles);
        println!("{f:>5}  {phase:<11} {wt:>2}  {}", s.cycles);
    }
    println!("DFSL selected WT {} after evaluation", dfsl.best_wt());
}
