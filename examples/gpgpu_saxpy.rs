//! GPGPU mode: the same SIMT cores that shade pixels run compute kernels —
//! the paper's central "unified model" claim. This example launches a
//! SAXPY kernel written in the shader ISA and verifies the result.
//!
//! Run with: `cargo run --release --example gpgpu_saxpy`

use emerald::prelude::*;
use std::sync::Arc;

fn main() {
    let mem = SharedMem::with_capacity(1 << 24);
    let mut gpu = Gpu::new(GpuConfig::case_study_2());
    let mut ctx = emerald::gpu::GlobalMemCtx::new(mem.clone());
    let mut port = SimpleMemPort::new(MemorySystem::new(MemorySystemConfig::baseline(
        4,
        DramConfig::lpddr3_1600(),
    )));

    // y[i] = a*x[i] + y[i] over 4096 elements.
    let n = 4096usize;
    let x = mem.alloc((n * 4) as u64, 128);
    let y = mem.alloc((n * 4) as u64, 128);
    for i in 0..n {
        mem.write_f32(x + (i * 4) as u64, i as f32);
        mem.write_f32(y + (i * 4) as u64, 10.0);
    }

    let saxpy = Arc::new(
        assemble(
            "
            mov.b32 r0, %input0      // global thread id
            shl.u32 r1, r0, 2
            add.u32 r2, r1, %param0  // &x[i]
            add.u32 r3, r1, %param1  // &y[i]
            ld.global.b32 r4, [r2+0]
            ld.global.b32 r5, [r3+0]
            mov.b32 r6, %param2      // a
            mad.f32 r7, r6, r4, r5
            st.global.b32 [r3+0], r7
            exit",
        )
        .expect("kernel assembles"),
    );
    let a = 2.5f32;
    let kernel = Kernel::linear(saxpy, n, 256, vec![x as u32, y as u32, a.to_bits()]);
    let id = gpu.launch_kernel(kernel);

    let cycles = gpu.run_to_idle(0, 50_000_000, &mut ctx, &mut port);
    assert!(gpu.kernel_done(id));

    // Verify on the host.
    let mut errors = 0;
    for i in 0..n {
        let got = mem.read_f32(y + (i * 4) as u64);
        let want = a * i as f32 + 10.0;
        if got != want {
            errors += 1;
        }
    }
    println!("SAXPY over {n} elements: {cycles} cycles, {errors} errors");
    println!("  instructions issued : {}", gpu.stats().issued);
    println!("  warps retired       : {}", gpu.stats().warps_retired);
    println!(
        "  DRAM reads/writes   : {}/{}",
        gpu.stats().mem_reads,
        gpu.stats().mem_writes
    );
    assert_eq!(errors, 0);
}
