//! Trace-driven vs execution-driven simulation — the paper's §5.2.3
//! argument as a runnable demo: record a memory trace from an
//! execution-driven SoC run, replay it open-loop against a different
//! memory organization, and compare the conclusions each methodology
//! reaches about HMC.
//!
//! Run with: `cargo run --release --example trace_replay`

use emerald::core::session::SceneBinding;
use emerald::mem::dram::DramConfig;
use emerald::mem::system::SourceClass;
use emerald::prelude::*;
use emerald::soc::experiment::{calibrate_period, MemCfgKind};
use emerald::soc::trace::{filter_trace, replay_trace};

fn main() {
    let (w, h) = (96u32, 72u32);
    let m2 = &emerald::scene::workloads::m_models()[1];
    let period = calibrate_period(m2, w, h);

    // 1. Execution-driven BAS run with trace capture.
    let cfg = SocConfig::case_study_1(
        MemCfgKind::Bas.build(DramConfig::lpddr3_1333()),
        w,
        h,
        period,
    );
    let mut soc = Soc::new(cfg);
    soc.memsys.enable_trace();
    let binding = SceneBinding::new(&soc.mem, m2);
    let mut bas_gpu = 0.0;
    for f in 0..2 {
        let rec = soc.run_frame(
            vec![binding.draw_for_frame(f, w as f32 / h as f32, false)],
            300_000_000,
        );
        if f > 0 {
            bas_gpu = rec.gpu_cycles as f64;
        }
    }
    let trace = soc.memsys.take_trace();
    println!(
        "recorded {} requests from the execution-driven BAS run",
        trace.len()
    );
    let gpu_reqs = filter_trace(&trace, SourceClass::Gpu).len();
    println!("  ({gpu_reqs} from the GPU)");

    // 2. Execution-driven HMC run (ground truth for the comparison).
    let cfg = SocConfig::case_study_1(
        MemCfgKind::Hmc.build(DramConfig::lpddr3_1333()),
        w,
        h,
        period,
    );
    let mut soc = Soc::new(cfg);
    let binding = SceneBinding::new(&soc.mem, m2);
    let mut hmc_gpu = 0.0;
    for f in 0..2 {
        let rec = soc.run_frame(
            vec![binding.draw_for_frame(f, w as f32 / h as f32, false)],
            300_000_000,
        );
        if f > 0 {
            hmc_gpu = rec.gpu_cycles as f64;
        }
    }

    // 3. Trace replay of the BAS trace under both organizations.
    let bas_replay = replay_trace(&trace, MemCfgKind::Bas.build(DramConfig::lpddr3_1333()));
    let hmc_replay = replay_trace(&trace, MemCfgKind::Hmc.build(DramConfig::lpddr3_1333()));

    println!("\nHMC/BAS GPU-time ratio:");
    println!("  execution-driven : {:.2}", hmc_gpu / bas_gpu);
    println!(
        "  trace replay     : {:.2}",
        hmc_replay.gpu_span() as f64 / bas_replay.gpu_span().max(1) as f64
    );
    println!(
        "\nReplay cannot slow the *generation* of future requests, so it\n\
         understates the effect — the reason Emerald is execution-driven."
    );
}
