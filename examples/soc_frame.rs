//! Full-system mode: the M2 workload on the complete SoC (CPU cluster +
//! GPU + display + 2-channel DRAM), comparing the baseline memory system
//! against HMC — a miniature of case study I.
//!
//! Run with: `cargo run --release --example soc_frame`

use emerald::mem::dram::DramConfig as Dram;
use emerald::prelude::*;
use emerald::soc::experiment::{calibrate_period, run_cell, RunParams};

fn main() {
    let (w, h) = (160u32, 120u32);
    let m2 = &emerald::scene::workloads::m_models()[1];
    let period = calibrate_period(m2, w, h);
    println!("calibrated GPU frame period: {period} cycles");
    let params = RunParams {
        width: w,
        height: h,
        frames: 3,
        dram: Dram::lpddr3_1333(),
        gpu_frame_period: period,
        probe_window: None,
        max_cycles_per_frame: 400_000_000,
    };
    for kind in [MemCfgKind::Bas, MemCfgKind::Dcb, MemCfgKind::Hmc] {
        let cell = run_cell(m2, kind, &params);
        println!(
            "{:>4}: avg GPU frame {:>9.0} cycles | avg total frame {:>9.0} | row-hit {:>5.1}% | display bytes {:>9}",
            cell.config,
            cell.avg_gpu_cycles,
            cell.avg_total_cycles,
            cell.row_hit_rate * 100.0,
            cell.display_serviced_bytes,
        );
    }
}
