//! Telemetry demo: renders one application frame on the full SoC with
//! every trace category enabled, then writes
//!
//! * `emerald_trace.json` — a Chrome trace-event file; load it at
//!   <https://ui.perfetto.dev> (or `chrome://tracing`) to see the frame
//!   span, per-core warp launches/retirements, draw-call spans, DRAM row
//!   conflicts and display scanout events on a shared timeline, and
//! * `emerald_stats.json` / `emerald_stats.csv` — the hierarchical
//!   metrics registry for the same frame.
//!
//! Run with: `cargo run --release --example trace_export`

use emerald::obs::{trace, Registry, TraceCat};
use emerald::prelude::*;
use emerald::soc::CpuWorkload;

fn main() {
    let (w, h) = (64u32, 48u32);
    let mut cfg = SocConfig::case_study_1(
        MemorySystemConfig::baseline(2, DramConfig::lpddr3_1333()),
        w,
        h,
        400_000,
    );
    // Two CPU cores keep the demo quick while still producing CPU traffic.
    cfg.cpu_workloads = vec![CpuWorkload::driver(), CpuWorkload::compute()];
    let mut soc = Soc::new(cfg);
    soc.memsys.enable_probes(2_000);

    // Record everything: warps, draws, DRAM, caches, display, DFSL, frame.
    trace::set_enabled(TraceCat::ALL);

    let m2 = &emerald::scene::workloads::m_models()[1];
    let binding = SceneBinding::new(&soc.mem, m2);
    let rec = soc.run_frame(
        vec![binding.draw_for_frame(0, w as f32 / h as f32, false)],
        60_000_000,
    );
    println!(
        "frame rendered: {} GPU cycles, {} total cycles, {} fragments",
        rec.gpu_cycles, rec.total_cycles, rec.gfx.fragments
    );

    // Event trace → Chrome trace-event JSON.
    let events = trace::drain();
    let dropped = trace::take_dropped();
    println!(
        "captured {} trace events ({} dropped by the ring buffer)",
        events.len(),
        dropped
    );
    let chrome = trace::export_chrome(&events);
    std::fs::write("emerald_trace.json", &chrome).expect("write trace");
    println!("wrote emerald_trace.json — open it at https://ui.perfetto.dev");

    // Metrics registry → hierarchical JSON + long-format CSV.
    let mut reg = Registry::new();
    soc.publish(&mut reg);
    std::fs::write("emerald_stats.json", reg.to_json()).expect("write stats json");
    std::fs::write("emerald_stats.csv", reg.to_csv()).expect("write stats csv");
    println!(
        "wrote emerald_stats.json / emerald_stats.csv ({} instruments)",
        reg.len()
    );

    // A taste of the hierarchy on stdout.
    for path in [
        "gfx.gpu.cores.issued",
        "gfx.draw_cycles",
        "mem.dram.row_hits",
        "mem.dram.bytes",
        "soc.display.serviced_bytes",
    ] {
        if let Some(v) = reg.get(path) {
            println!("  {path} [{}] = {:.2}", v.kind(), v.scalar());
        }
    }
}
