//! Quickstart: render one frame of a textured cube on the simulated GPU
//! and print the timing/statistics the simulator collects.
//!
//! Run with: `cargo run --release --example quickstart`

use emerald::prelude::*;

fn main() {
    // 1. Simulated physical memory, a render target and the GPU model
    //    (Table 7 of the paper: 6 SIMT clusters, 2 MB L2).
    let mem = SharedMem::with_capacity(1 << 26);
    let rt = RenderTarget::alloc(&mem, 256, 192);
    rt.clear(&mem, [0.02, 0.02, 0.05, 1.0], 1.0);
    let mut renderer = GpuRenderer::new(
        GpuConfig::case_study_2(),
        GfxConfig::case_study_2(),
        mem.clone(),
        rt,
    );

    // 2. A 4-channel DRAM system behind the GPU (standalone mode).
    let mut port = SimpleMemPort::new(MemorySystem::new(MemorySystemConfig::baseline(
        4,
        DramConfig::lpddr3_1600(),
    )));

    // 3. Bind the W3 workload (textured cube) and draw a frame.
    let cube = &emerald::scene::workloads::w_models()[2];
    let binding = SceneBinding::new(&mem, cube);
    renderer.draw(binding.draw_for_frame(0, 256.0 / 192.0, false));
    let stats = renderer.run_frame(&mut port, 100_000_000);

    println!("rendered {} ({})", cube.id, cube.name);
    println!("  GPU cycles        : {}", stats.cycles);
    println!(
        "  primitives        : {} drawn, {} culled",
        stats.prims_distributed, stats.prims_culled
    );
    println!("  fragments shaded  : {}", stats.fragments);
    println!("  instructions      : {}", stats.instructions);
    println!(
        "  L1 misses (D/T/Z) : {}/{}/{}",
        stats.l1d_misses, stats.l1t_misses, stats.l1z_misses
    );
    println!(
        "  DRAM reads/writes : {}/{}",
        stats.dram_reads, stats.dram_writes
    );

    // 4. The frame is a real image in simulated memory. Write it out and
    //    print a tiny ASCII thumbnail.
    std::fs::write("quickstart.ppm", rt.to_ppm(&mem)).ok();
    println!("  wrote quickstart.ppm");
    let img = rt.read_color(&mem);
    for y in (0..192).step_by(16) {
        let mut row = String::new();
        for x in (0..256).step_by(8) {
            let px = img[(y * 256 + x) as usize];
            let [r, g, b, _] = emerald::common::math::unpack_rgba8(px);
            let lum = 0.3 * r + 0.6 * g + 0.1 * b;
            row.push([' ', '.', ':', 'o', '#'][(lum * 4.99) as usize]);
        }
        println!("  |{row}|");
    }
}
