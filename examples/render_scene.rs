//! Standalone-mode rendering across all six case-study-II workloads
//! (Table 8), printing per-workload pipeline statistics — the kind of
//! experiment §6 builds on.
//!
//! Run with: `cargo run --release --example render_scene`

use emerald::prelude::*;

fn main() {
    let (w, h) = (256u32, 192u32);
    println!(
        "{:<4} {:>8} {:>8} {:>9} {:>9} {:>8} {:>8}",
        "id", "tris", "cycles", "frags", "hiz-kill", "tc-tiles", "l1-miss"
    );
    for wl in emerald::scene::workloads::w_models() {
        let mem = SharedMem::with_capacity(1 << 27);
        let rt = RenderTarget::alloc(&mem, w, h);
        rt.clear(&mem, [0.0; 4], 1.0);
        let mut r = GpuRenderer::new(
            GpuConfig::case_study_2(),
            GfxConfig::case_study_2(),
            mem.clone(),
            rt,
        );
        let mut port = SimpleMemPort::new(MemorySystem::new(MemorySystemConfig::baseline(
            4,
            DramConfig::lpddr3_1600(),
        )));
        let binding = SceneBinding::new(&mem, &wl);
        r.draw(binding.draw_for_frame(0, w as f32 / h as f32, false));
        let s = r.run_frame(&mut port, 200_000_000);
        println!(
            "{:<4} {:>8} {:>8} {:>9} {:>9} {:>8} {:>8}",
            wl.id,
            wl.mesh.tri_count(),
            s.cycles,
            s.fragments,
            s.hiz_killed,
            s.tc_tiles,
            s.l1_misses_total()
        );
    }
}
