#!/usr/bin/env bash
# Offline-safe CI gate: format, lint, build, test.
#
# The main workspace has zero external dependencies, so everything here
# runs without network access. crates/bench (criterion) is a standalone
# workspace and is deliberately NOT covered — it needs crates.io once.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> examples smoke test"
cargo run --release --example trace_export >/dev/null

echo "CI gate passed."
