#!/usr/bin/env bash
# Offline-safe CI gate: format, lint, build, test.
#
# The main workspace has zero external dependencies, so everything here
# runs without network access. crates/bench (criterion) is a standalone
# workspace and is deliberately NOT covered — it needs crates.io once.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (EMERALD_SKIP=1, event-driven clocking — the default)"
EMERALD_SKIP=1 cargo test --workspace -q

echo "==> cargo test (EMERALD_SKIP=0, per-cycle reference clocking)"
EMERALD_SKIP=0 cargo test --workspace -q

echo "==> cargo test (EMERALD_CPU_BATCH=0, per-cycle CPU reference)"
EMERALD_CPU_BATCH=0 cargo test --workspace -q

echo "==> determinism suite at EMERALD_THREADS=4"
EMERALD_THREADS=4 cargo test --release --test determinism -q

echo "==> determinism suite at EMERALD_THREADS=4, pool forced (EMERALD_PAR_THRESHOLD=0)"
EMERALD_THREADS=4 EMERALD_PAR_THRESHOLD=0 cargo test --release --test determinism -q

echo "==> determinism suite at EMERALD_THREADS=4, pool disabled (EMERALD_PAR_THRESHOLD=max)"
EMERALD_THREADS=4 EMERALD_PAR_THRESHOLD=max cargo test --release --test determinism -q

echo "==> conformance suite (32 random programs/draws, differential + metamorphic)"
EMERALD_CONF_CASES=32 cargo test --release --test conformance -q

echo "==> event-skip oracle suite (skip-on vs skip-off lockstep + gap oracles)"
cargo test --release --test event_skip -q

echo "==> event-skip oracle suite under per-cycle CPU reference (EMERALD_CPU_BATCH=0)"
EMERALD_CPU_BATCH=0 cargo test --release --test event_skip -q

echo "==> cpu-batch oracle suite (batch-axis lockstep + matrix + stall path)"
cargo test --release --test cpu_batch -q

echo "==> snapshot lockstep suite (checkpoint/restore invisibility, event-driven clocking)"
cargo test --release --test snapshot -q

echo "==> snapshot lockstep suite under per-cycle reference clocking (EMERALD_SKIP=0)"
EMERALD_SKIP=0 cargo test --release --test snapshot -q

echo "==> examples smoke test"
cargo run --release --example trace_export >/dev/null

echo "==> sweep engine smoke (2 axes x 2 values, 2 fork groups, 4 workers)"
cargo run --release --quiet --bin emerald_bench -- --sweep sweeps/ci_smoke.json --workers 4 > SWEEP_smoke.jsonl
test "$(grep -c '"ev":"session"' SWEEP_smoke.jsonl)" -eq 4
grep -q '"start":"forked"' SWEEP_smoke.jsonl
grep -q '"registry":{' SWEEP_smoke.jsonl

echo "==> sweep protocol smoke (emerald_serve ping + one-shot spec run)"
echo '{"op":"ping"}' | cargo run --release --quiet --bin emerald_serve | grep -q '"ev":"pong"'
cargo run --release --quiet --bin emerald_serve -- --spec sweeps/ci_smoke.json --workers 4 \
  | grep -q '"ev":"sweep_done"'

echo "==> checked-in sweep specs validate against the real axis tables (sweeps/*.json)"
for spec in sweeps/*.json; do
  cargo run --release --quiet --bin emerald_serve -- --spec "$spec" --check
done

echo "==> bench smoke (BENCH_frame.json emitted and well-formed)"
./scripts/bench.sh --smoke >/dev/null 2>&1
test -s BENCH_frame.json
grep -q '"schema": "emerald-bench-v1"' BENCH_frame.json
grep -q '"wall_ms"' BENCH_frame.json
grep -q '"cycles_per_sec"' BENCH_frame.json
grep -q '"speedup_vs_1t"' BENCH_frame.json
grep -q '"phases"' BENCH_frame.json
grep -q '"pool_dispatch"' BENCH_frame.json
grep -q '"soc_restore_warm"' BENCH_frame.json

echo "==> profiled bench smoke (EMERALD_PROFILE=1: profile blocks, overhead gate, trace export)"
EMERALD_PROFILE=1 ./scripts/bench.sh --smoke --out BENCH_profile.json >/dev/null 2>&1
test -s BENCH_profile.json
grep -q '"profile"' BENCH_profile.json
grep -q '"profile_overhead_pct"' BENCH_profile.json
grep -q '"soc_skippable_frac"' BENCH_profile.json
test -s BENCH_profile_trace.json

cargo test --release --test bench_schema -q

echo "==> bench_diff: smoke run vs committed baseline (cycles only; pins the"
echo "    soc_restore_warm restored-run cycles to the committed straight-run value)"
cargo run --release --quiet --bin bench_diff -- scripts/bench_baseline.json BENCH_frame.json --no-wall

echo "==> bench_diff: profiled vs unprofiled smoke (cycles must be identical)"
cargo run --release --quiet --bin bench_diff -- BENCH_frame.json BENCH_profile.json --no-wall

echo "==> bench_diff: skip-off vs skip-on smoke (simulated cycles must be identical)"
EMERALD_SKIP=0 ./scripts/bench.sh --smoke --out BENCH_skipoff.json >/dev/null 2>&1
cargo run --release --quiet --bin bench_diff -- BENCH_frame.json BENCH_skipoff.json --no-wall

echo "==> bench_diff: batch-off vs batch-on smoke (simulated cycles must be identical)"
EMERALD_CPU_BATCH=0 ./scripts/bench.sh --smoke --out BENCH_batchoff.json >/dev/null 2>&1
cargo run --release --quiet --bin bench_diff -- BENCH_frame.json BENCH_batchoff.json --no-wall

echo "==> bench_diff: per-cycle reference (skip+batch off) vs default (cycles identical)"
EMERALD_SKIP=0 EMERALD_CPU_BATCH=0 ./scripts/bench.sh --smoke --out BENCH_percycle.json >/dev/null 2>&1
cargo run --release --quiet --bin bench_diff -- BENCH_frame.json BENCH_percycle.json --no-wall

echo "CI gate passed."
