#!/usr/bin/env bash
# Reproducible benchmark harness: builds the release binary and runs the
# canonical render / GPGPU / SoC-frame workloads at 1..N worker threads,
# writing BENCH_frame.json at the repo root.
#
# Usage:
#   scripts/bench.sh            # full run (threads 1, 2, 4)
#   scripts/bench.sh --smoke    # small workloads, threads 1, 2 (CI smoke)
#   scripts/bench.sh --out F    # write JSON to F instead
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --bin emerald_bench
exec ./target/release/emerald_bench "$@"
