//! Full-system behaviour: the qualitative findings of case study I must
//! hold on miniature configurations.

use emerald::mem::dram::DramConfig as Dram;

use emerald::soc::experiment::{calibrate_period, run_cell, MemCfgKind, RunParams};

fn params(period: u64, dram: Dram) -> RunParams {
    RunParams {
        width: 64,
        height: 48,
        frames: 2,
        dram,
        gpu_frame_period: period,
        probe_window: Some(4_000),
        max_cycles_per_frame: 600_000_000,
    }
}

#[test]
fn hmc_partitioning_slows_the_gpu() {
    // Needs enough GPU bandwidth demand to saturate a single channel, so
    // run at a larger target than the other miniatures.
    let m2 = &emerald::scene::workloads::m_models()[1];
    let period = calibrate_period(m2, 160, 120);
    let mut p = params(period, Dram::lpddr3_1333());
    p.width = 160;
    p.height = 120;
    let bas = run_cell(m2, MemCfgKind::Bas, &p);
    let hmc = run_cell(m2, MemCfgKind::Hmc, &p);
    assert!(
        hmc.avg_gpu_cycles > 1.2 * bas.avg_gpu_cycles,
        "HMC {} vs BAS {}",
        hmc.avg_gpu_cycles,
        bas.avg_gpu_cycles
    );
}

#[test]
fn dash_deprioritizes_a_deadline_meeting_gpu() {
    // Fig. 9's DASH finding: while the GPU meets its (generous) deadline,
    // CPU traffic gets priority and GPU render time stretches.
    let m3 = &emerald::scene::workloads::m_models()[2];
    let period = calibrate_period(m3, 64, 48);
    let p = params(period * 4, Dram::lpddr3_1333()); // very generous deadline
    let bas = run_cell(m3, MemCfgKind::Bas, &p);
    let dcb = run_cell(m3, MemCfgKind::Dcb, &p);
    assert!(
        dcb.avg_gpu_cycles > bas.avg_gpu_cycles,
        "DASH should stretch GPU frames: DCB {} vs BAS {}",
        dcb.avg_gpu_cycles,
        bas.avg_gpu_cycles
    );
}

#[test]
fn all_sources_reach_dram_and_probes_record_them() {
    let m4 = &emerald::scene::workloads::m_models()[3];
    let p = params(300_000, Dram::lpddr3_1333());
    let cell = run_cell(m4, MemCfgKind::Bas, &p);
    assert!(cell.row_hit_rate > 0.0);
    assert!(cell.bytes_per_activation > 0.0);
    assert!(cell.display_serviced_bytes > 0);
    let total: u64 = cell
        .probes
        .iter()
        .flat_map(|(_, s)| s.iter().map(|(_, b)| *b))
        .sum();
    assert!(total > 0, "probes recorded nothing");
}

#[test]
fn low_bandwidth_dram_stretches_frames() {
    let m2 = &emerald::scene::workloads::m_models()[1];
    let period = calibrate_period(m2, 64, 48);
    let fast = run_cell(m2, MemCfgKind::Bas, &params(period, Dram::lpddr3_1333()));
    let slow = run_cell(m2, MemCfgKind::Bas, &params(period, Dram::low_bandwidth()));
    assert!(
        slow.avg_gpu_cycles > 2.0 * fast.avg_gpu_cycles,
        "slow {} vs fast {}",
        slow.avg_gpu_cycles,
        fast.avg_gpu_cycles
    );
}
