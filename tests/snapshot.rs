//! Snapshot-invisibility conformance axis for checkpoint/restore
//! (`Soc::checkpoint` / `Soc::run_frame_checkpoint` / `Soc::restore`).
//!
//! A checkpoint taken at a commit boundary and restored into a fresh SoC
//! must be *invisible* to simulated state: the restored instance has to
//! agree bit-for-bit with the straight run on every per-frame record, the
//! framebuffer and the stats registry — at the resumed frame's barrier and
//! at every later one. Two oracles enforce this:
//!
//! 1. **Randomized lockstep** — seeded random SoC scenarios (memory
//!    topology, workload mix, event-skip and cpu-batch axes all drawn from
//!    the case seed) run straight while a checkpoint is captured at a
//!    random cycle; the checkpoint is revived into a fresh SoC which must
//!    then shadow the straight run to the end of the scenario. When the
//!    random cycle falls past the frame's last commit boundary the case
//!    falls back to an inter-frame checkpoint, so every case verifies a
//!    restore either way.
//! 2. **Full matrix** — one fixed scenario across
//!    `cpu_batch × event_skip × GPU threads {1,2,4}`: in all twelve cells
//!    the restored run must match its straight run bit-for-bit, proving
//!    the snapshot format is invisible under every clocking and
//!    host-parallelism mode.

use emerald::common::check::{check_n, env_cases};
use emerald::common::rng::Xorshift64;
use emerald::prelude::*;
use emerald::scene::mesh::unit_cube;
use emerald::soc::cpu::{CpuWorkload, Phase};

/// Case count for the lockstep oracle; override with
/// `EMERALD_SNAPSHOT_CASES`.
fn snapshot_cases() -> u32 {
    env_cases("EMERALD_SNAPSHOT_CASES", 3)
}

fn registry_json(soc: &Soc) -> String {
    let mut reg = Registry::new();
    soc.publish(&mut reg);
    reg.to_json()
}

/// Everything externally observable about a SoC at a frame barrier.
fn digest(soc: &Soc) -> (u64, Vec<u32>, String) {
    (soc.now(), soc.rt.read_color(&soc.mem), registry_json(soc))
}

/// Shrinks every `Work` phase so a frame stays test-sized (same scheme as
/// the event-skip and cpu-batch lockstep oracles).
fn shrink(mut w: CpuWorkload, rng: &mut Xorshift64) -> CpuWorkload {
    let div = rng.range(6, 14);
    for p in &mut w.phases {
        if let Phase::Work { instrs, .. } = p {
            *instrs = (*instrs / div).max(64);
        }
    }
    w
}

/// A deterministic cube draw, parameterized by frame index.
fn cube_draw(soc: &Soc, frame: u32, aspect: f32) -> DrawCall {
    use emerald::common::math::{Mat4, Vec3};
    let a = 0.4 + frame as f32 * 0.08;
    let mvp = Mat4::perspective(60f32.to_radians(), aspect, 0.1, 50.0).mul_mat4(&Mat4::look_at(
        Vec3::new(2.0 * a.cos(), 1.0, 2.0 * a.sin()),
        Vec3::splat(0.0),
        Vec3::new(0.0, 1.0, 0.0),
    ));
    let fso = FsOptions {
        textured: false,
        ..FsOptions::default()
    };
    DrawCall {
        vb: VertexBuffer::upload(&soc.mem, &unit_cube()),
        topology: Topology::Triangles,
        vs: shaders::vertex_transform(),
        fs: shaders::fragment_shader(fso),
        mvp: mvp.to_array(),
        depth_test: true,
        depth_write: true,
        blend: false,
        texture: None,
    }
}

/// Draws a random SoC scenario. The event-skip and cpu-batch axes are part
/// of the scenario, so snapshots are exercised under every clocking.
fn random_config(rng: &mut Xorshift64) -> SocConfig {
    let kind = [MemCfgKind::Bas, MemCfgKind::Dcb, MemCfgKind::Hmc][rng.below(3) as usize];
    let dram = if rng.chance(0.5) {
        DramConfig::lpddr3_1333()
    } else {
        DramConfig::lpddr3_1600()
    };
    let (w, h) = if rng.chance(0.5) { (48, 32) } else { (64, 48) };
    let period = rng.range(150_000, 400_000);
    let mut cfg = SocConfig::case_study_1(kind.build(dram), w, h, period);
    let extras = [
        CpuWorkload::streamer(),
        CpuWorkload::compute(),
        CpuWorkload::mixed(),
    ];
    let mut workloads = vec![shrink(CpuWorkload::driver(), rng)];
    for e in extras {
        if rng.chance(0.5) {
            workloads.push(shrink(e, rng));
        }
    }
    cfg.cpu_workloads = workloads;
    cfg.gpu.event_skip = rng.chance(0.5);
    cfg.cpu_batch = rng.chance(0.5);
    cfg
}

const MAX: u64 = 60_000_000;

/// Runs the straight instance through `target_frame` while capturing a
/// checkpoint, restores it into a fresh SoC, shadows the straight run to
/// `frames`, and asserts bit-identical observables at every barrier.
///
/// `offset` positions the capture inside `target_frame` relative to the
/// frame's start; the commit-boundary scan makes any offset legal. Returns
/// `true` when the capture happened mid-frame (as opposed to the
/// inter-frame fallback), so callers can assert coverage of that path.
fn lockstep(cfg: SocConfig, frames: u32, target_frame: u32, offset: u64, label: &str) -> bool {
    let aspect = cfg.width as f32 / cfg.height as f32;
    let mut straight = Soc::new(cfg);
    for f in 0..target_frame {
        let d = cube_draw(&straight, f, aspect);
        straight.run_frame(vec![d], MAX);
    }

    let d = cube_draw(&straight, target_frame, aspect);
    let at = straight.now() + offset;
    let (rec, snap) = straight.run_frame_checkpoint(vec![d.clone()], MAX, Some(at));

    let mut restored = match &snap {
        Some(bytes) => {
            // Mid-frame capture: revive and finish the interrupted frame.
            // The draw's uploads are part of the restored memory image, so
            // the straight run's DrawCall is valid as-is.
            let mut soc = Soc::restore(bytes, straight.config())
                .unwrap_or_else(|e| panic!("{label}: restore failed: {e:?}"));
            assert!(soc.has_pending_frame(), "{label}: cursor lost");
            let r = soc.resume_frame(vec![d], MAX);
            assert_eq!(
                (rec.gpu_cycles, rec.total_cycles, &rec.gfx),
                (r.gpu_cycles, r.total_cycles, &r.gfx),
                "{label}: resumed frame record diverged"
            );
            soc
        }
        None => {
            // The random cycle fell past the frame's last commit boundary;
            // verify an inter-frame checkpoint instead.
            let bytes = straight.checkpoint();
            Soc::restore(&bytes, straight.config())
                .unwrap_or_else(|e| panic!("{label}: restore failed: {e:?}"))
        }
    };
    assert_eq!(
        digest(&straight),
        digest(&restored),
        "{label}: state diverged right after restore"
    );

    // The restored SoC must shadow the straight run for the remaining
    // frames, including identical upload addresses (allocator cursor).
    for f in target_frame + 1..frames {
        let ds = cube_draw(&straight, f, aspect);
        let dr = cube_draw(&restored, f, aspect);
        assert_eq!(ds.vb.base, dr.vb.base, "{label}: frame {f} upload diverged");
        let rs = straight.run_frame(vec![ds], MAX);
        let rr = restored.run_frame(vec![dr], MAX);
        assert_eq!(
            (rs.gpu_cycles, rs.total_cycles, &rs.gfx),
            (rr.gpu_cycles, rr.total_cycles, &rr.gfx),
            "{label}: frame {f} record diverged"
        );
        assert_eq!(
            digest(&straight),
            digest(&restored),
            "{label}: frame {f} state diverged"
        );
    }
    // Total-state equality: re-snapshotting both instances must produce
    // byte-identical containers, covering state the frame digests cannot
    // see (RNG streams, warm cache contents, allocator cursors).
    assert_eq!(
        straight.checkpoint(),
        restored.checkpoint(),
        "{label}: final state snapshots diverged"
    );
    snap.is_some()
}

/// Oracle 1: random scenarios, random checkpoint cycle. The capture cycle
/// is drawn from the span of the scenario's first frame, which keeps most
/// cases mid-frame while still exercising the inter-frame fallback.
#[test]
fn random_cycle_restore_is_invisible() {
    let mut mid_frame = 0u32;
    let cases = snapshot_cases();
    check_n("soc_snapshot_axis", cases, |rng| {
        let cfg = random_config(rng);
        // Estimate a frame's cycle span from a probe frame of the same
        // scenario so the random capture cycle lands inside the frame.
        let aspect = cfg.width as f32 / cfg.height as f32;
        let mut probe = Soc::new(cfg.clone());
        let d = cube_draw(&probe, 0, aspect);
        let span = probe.run_frame(vec![d], MAX).total_cycles;
        let offset = rng.below(span + span / 4);
        let frames = 2 + rng.below(2) as u32;
        let target = rng.below(2) as u32;
        if lockstep(cfg, frames, target, offset, "random") {
            mid_frame += 1;
        }
    });
    // The axis is vacuous if every case degraded to the inter-frame
    // fallback (default case count is small, so require just one).
    assert!(
        mid_frame > 0,
        "no case captured mid-frame in {cases} cases; offsets never hit a commit boundary"
    );
}

/// A fixed two-core scenario for the matrix oracle (same shape as the
/// cpu-batch matrix).
fn fixed_config(cpu_batch: bool, event_skip: bool, threads: usize) -> SocConfig {
    let mut cfg = SocConfig::case_study_1(
        MemCfgKind::Dcb.build(DramConfig::lpddr3_1600()),
        48,
        32,
        200_000,
    );
    let mut rng = Xorshift64::new(0xBA7C);
    cfg.cpu_workloads = vec![
        shrink(CpuWorkload::driver(), &mut rng),
        shrink(CpuWorkload::mixed(), &mut rng),
    ];
    cfg.cpu_batch = cpu_batch;
    cfg.gpu.event_skip = event_skip;
    cfg.gpu.threads = threads;
    cfg
}

/// Oracle 2: snapshot invisibility across the full
/// `cpu_batch × event_skip × threads` matrix. Each cell checkpoints its
/// second frame mid-flight and requires the restored run to match its own
/// straight run bit-for-bit (cross-cell equality of straight runs is the
/// cpu-batch matrix oracle's job).
#[test]
fn restore_matrix_is_bit_identical() {
    let mut mid_frame = 0u32;
    for cpu_batch in [false, true] {
        for event_skip in [false, true] {
            for threads in [1usize, 2, 4] {
                let label = format!("batch={cpu_batch} skip={event_skip} threads={threads}");
                // Mid-frame by construction: half a frame into frame 1.
                let probe_cfg = fixed_config(cpu_batch, event_skip, threads);
                let aspect = probe_cfg.width as f32 / probe_cfg.height as f32;
                let mut probe = Soc::new(probe_cfg.clone());
                let d = cube_draw(&probe, 0, aspect);
                let span = probe.run_frame(vec![d], MAX).total_cycles;
                if lockstep(probe_cfg, 3, 1, span / 2, &label) {
                    mid_frame += 1;
                }
            }
        }
    }
    assert!(
        mid_frame >= 6,
        "only {mid_frame}/12 matrix cells captured mid-frame"
    );
}
