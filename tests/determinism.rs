//! Bit-reproducibility: identical configurations must produce identical
//! cycle counts, images and statistics — the property that makes a
//! simulator's experiments trustworthy.

use emerald::core::session::SceneBinding;
use emerald::prelude::*;

/// Renders one canonical frame with the given worker-thread count and
/// pool-engagement threshold, returning everything a determinism check
/// cares about: cycle count, framebuffer contents, instruction count,
/// retired warps, and the full stats-registry snapshot as JSON.
fn render_with_dispatch(
    threads: usize,
    parallel_threshold: usize,
) -> (u64, Vec<u32>, u64, u64, String) {
    render_full(threads, parallel_threshold, None)
}

/// Like [`render_with_dispatch`], but with the event-skip axis pinned
/// explicitly (`None` inherits `EMERALD_SKIP` like every preset does).
fn render_full(
    threads: usize,
    parallel_threshold: usize,
    event_skip: Option<bool>,
) -> (u64, Vec<u32>, u64, u64, String) {
    let mem = SharedMem::with_capacity(1 << 26);
    let rt = RenderTarget::alloc(&mem, 64, 48);
    rt.clear(&mem, [0.0; 4], 1.0);
    let mut cfg = GpuConfig::tiny();
    cfg.threads = threads;
    cfg.parallel_threshold = parallel_threshold;
    if let Some(skip) = event_skip {
        cfg.event_skip = skip;
    }
    let mut r = GpuRenderer::new(cfg, GfxConfig::case_study_2(), mem.clone(), rt);
    let mut port = SimpleMemPort::new(MemorySystem::new(MemorySystemConfig::baseline(
        2,
        DramConfig::lpddr3_1600(),
    )));
    let wl = emerald::scene::workloads::w_models().swap_remove(1);
    let binding = SceneBinding::new(&mem, &wl);
    r.draw(binding.draw_for_frame(0, 64.0 / 48.0, false));
    let s = r.run_frame(&mut port, 100_000_000);
    let mut reg = emerald::obs::Registry::new();
    r.publish(&mut reg, "render");
    let retired = reg
        .get("render.gpu.warps_retired")
        .map(|v| v.scalar() as u64)
        .unwrap_or(0);
    (
        s.cycles,
        rt.read_color(&mem),
        s.instructions,
        retired,
        reg.to_json(),
    )
}

/// Threshold inherited from `EMERALD_PAR_THRESHOLD` so `scripts/ci.sh`
/// can re-run the whole suite with the pool forced on or off.
fn render_with_threads(threads: usize) -> (u64, Vec<u32>, u64, u64, String) {
    render_with_dispatch(threads, GpuConfig::parallel_threshold_from_env())
}

fn render_once() -> (u64, Vec<u32>, u64) {
    let (cycles, img, instructions, _, _) = render_with_threads(1);
    (cycles, img, instructions)
}

#[test]
fn standalone_render_is_bit_reproducible() {
    let (c1, img1, i1) = render_once();
    let (c2, img2, i2) = render_once();
    assert_eq!(c1, c2, "cycle counts differ");
    assert_eq!(i1, i2, "instruction counts differ");
    assert_eq!(img1, img2, "images differ");
}

/// The tentpole property of the bulk-synchronous cycle model: sharding
/// cores across worker threads must not change a single bit — the
/// framebuffer, warp accounting and the whole registry snapshot are
/// identical at 1, 2 and 4 threads.
#[test]
fn render_is_identical_across_thread_counts() {
    let (c1, img1, i1, w1, reg1) = render_with_threads(1);
    assert!(w1 > 0, "reference run retired no warps");
    for threads in [2usize, 4] {
        let (c, img, i, w, reg) = render_with_threads(threads);
        assert_eq!(c1, c, "cycle count differs at {threads} threads");
        assert_eq!(i1, i, "instruction count differs at {threads} threads");
        assert_eq!(w1, w, "retired warps differ at {threads} threads");
        assert_eq!(img1, img, "framebuffer differs at {threads} threads");
        assert_eq!(reg1, reg, "registry snapshot differs at {threads} threads");
    }
}

/// Companion to the thread-count invariance test: the *dispatch policy*
/// (pool forced on every non-empty cycle vs. never engaged, at several
/// widths) must be equally invisible — same framebuffer, same counters,
/// same registry snapshot.
#[test]
fn render_is_identical_across_dispatch_policies() {
    let (c1, img1, i1, w1, reg1) = render_with_dispatch(1, 2);
    assert!(w1 > 0, "reference run retired no warps");
    for (threads, thr) in [(2usize, 0usize), (4, 0), (2, usize::MAX), (4, usize::MAX)] {
        let (c, img, i, w, reg) = render_with_dispatch(threads, thr);
        assert_eq!(c1, c, "cycle count differs at t={threads} thr={thr}");
        assert_eq!(i1, i, "instruction count differs at t={threads} thr={thr}");
        assert_eq!(w1, w, "retired warps differ at t={threads} thr={thr}");
        assert_eq!(img1, img, "framebuffer differs at t={threads} thr={thr}");
        assert_eq!(
            reg1, reg,
            "registry snapshot differs at t={threads} thr={thr}"
        );
    }
}

/// The host self-profiler reads the simulation but must never perturb it:
/// with `EMERALD_PROFILE` effectively on, every determinism axis above
/// (thread count × pool forced-on/forced-off) still matches the
/// unprofiled reference bit for bit. Profiling is enabled via the same
/// global the env knob sets, so this is exactly the `EMERALD_PROFILE=1`
/// vs. unset comparison.
#[test]
fn render_is_identical_with_profiling_enabled() {
    let reference = render_with_dispatch(1, 2);
    for (threads, thr) in [(1usize, 0usize), (1, usize::MAX), (4, 0), (4, usize::MAX)] {
        emerald::obs::prof::set_enabled(true);
        let profiled = render_with_dispatch(threads, thr);
        let profile = emerald::obs::prof::take();
        emerald::obs::prof::set_enabled(false);
        assert!(
            profile.ticks > 0 && profile.gpu_cycles > 0,
            "profiler saw no cycles at t={threads} thr={thr}"
        );
        assert_eq!(
            reference.0, profiled.0,
            "cycle count differs with profiling at t={threads} thr={thr}"
        );
        assert_eq!(
            reference.2, profiled.2,
            "instruction count differs with profiling at t={threads} thr={thr}"
        );
        assert_eq!(
            reference.3, profiled.3,
            "retired warps differ with profiling at t={threads} thr={thr}"
        );
        assert_eq!(
            reference.1, profiled.1,
            "framebuffer differs with profiling at t={threads} thr={thr}"
        );
        assert_eq!(
            reference.4, profiled.4,
            "registry snapshot differs with profiling at t={threads} thr={thr}"
        );
    }
}

/// The event-skip tentpole property: jumping over provably dead cycles is
/// invisible — at 1 and 4 host threads, skip-on matches skip-off on the
/// cycle count, the framebuffer, every counter and the whole registry
/// snapshot, bit for bit.
#[test]
fn render_is_identical_across_skip_axis() {
    for threads in [1usize, 4] {
        let off = render_full(
            threads,
            GpuConfig::parallel_threshold_from_env(),
            Some(false),
        );
        let on = render_full(
            threads,
            GpuConfig::parallel_threshold_from_env(),
            Some(true),
        );
        assert!(off.3 > 0, "reference run retired no warps");
        assert_eq!(
            off.0, on.0,
            "cycle count differs across skip at t={threads}"
        );
        assert_eq!(
            off.2, on.2,
            "instruction count differs across skip at t={threads}"
        );
        assert_eq!(
            off.3, on.3,
            "retired warps differ across skip at t={threads}"
        );
        assert_eq!(
            off.1, on.1,
            "framebuffer differs across skip at t={threads}"
        );
        assert_eq!(off.4, on.4, "registry differs across skip at t={threads}");
    }
}

/// The profiler's cycle accounting must agree with skipped time: with
/// profiling on, `gpu_cycles` (ticked + skipped) equals the simulated
/// frame length exactly, under both clocking modes — a skipped cycle is
/// still a simulated cycle.
#[test]
fn profiler_accounts_every_simulated_cycle_across_skip() {
    for skip in [false, true] {
        emerald::obs::prof::set_enabled(true);
        emerald::obs::prof::reset();
        let (cycles, _, _, _, _) =
            render_full(1, GpuConfig::parallel_threshold_from_env(), Some(skip));
        let profile = emerald::obs::prof::take();
        emerald::obs::prof::set_enabled(false);
        assert_eq!(
            profile.gpu_cycles, cycles,
            "profiler gpu_cycles disagree with simulated time (skip={skip})"
        );
        assert!(
            profile.ticks <= cycles,
            "host loop iterations exceed simulated cycles (skip={skip})"
        );
    }
}

/// SoC companion to the profiler-agreement test: one frame on a small SoC
/// with profiling on, under both clocking modes — `soc_cycles` equals the
/// frame's simulated length, and the two modes' profiles agree on every
/// simulated-cycle counter (wall-time attribution legitimately differs).
#[test]
fn soc_profiler_agrees_with_skipped_time() {
    use emerald::soc::cpu::{CpuWorkload, Phase};
    use emerald::soc::{MemCfgKind, Soc, SocConfig};

    fn small_cfg(skip: bool) -> SocConfig {
        let mut cfg = SocConfig::case_study_1(
            MemCfgKind::Dcb.build(DramConfig::lpddr3_1333()),
            48,
            32,
            200_000,
        );
        cfg.cpu_workloads = vec![CpuWorkload::driver(), CpuWorkload::compute()];
        for w in &mut cfg.cpu_workloads {
            for p in &mut w.phases {
                if let Phase::Work { instrs, .. } = p {
                    *instrs /= 8;
                }
            }
        }
        cfg.gpu.event_skip = skip;
        cfg
    }

    let mut totals = Vec::new();
    for skip in [false, true] {
        let mut soc = Soc::new(small_cfg(skip));
        let wl = emerald::scene::workloads::w_models().swap_remove(1);
        let binding = SceneBinding::new(&soc.mem, &wl);
        let draw = binding.draw_for_frame(0, 48.0 / 32.0, false);
        emerald::obs::prof::set_enabled(true);
        emerald::obs::prof::reset();
        let rec = soc.run_frame(vec![draw], 60_000_000);
        let profile = emerald::obs::prof::take();
        emerald::obs::prof::set_enabled(false);
        assert_eq!(
            profile.soc_cycles, rec.total_cycles,
            "profiler soc_cycles disagree with the frame length (skip={skip})"
        );
        totals.push((rec.total_cycles, profile.soc_cycles, profile.gpu_cycles));
    }
    assert_eq!(
        totals[0], totals[1],
        "profiles diverge across the skip axis"
    );
}

#[test]
fn soc_frames_identical_with_profiling_enabled() {
    use emerald::mem::dram::DramConfig as Dram;
    use emerald::soc::experiment::{run_cell, MemCfgKind, RunParams};
    let m2 = &emerald::scene::workloads::m_models()[1];
    let params = RunParams {
        width: 48,
        height: 32,
        frames: 1,
        dram: Dram::lpddr3_1333(),
        gpu_frame_period: 200_000,
        probe_window: None,
        max_cycles_per_frame: 100_000_000,
    };
    let plain = run_cell(m2, MemCfgKind::Dcb, &params);
    emerald::obs::prof::set_enabled(true);
    emerald::obs::prof::reset();
    let profiled = run_cell(m2, MemCfgKind::Dcb, &params);
    let profile = emerald::obs::prof::take();
    emerald::obs::prof::set_enabled(false);
    assert!(profile.soc_cycles > 0, "profiler saw no SoC cycles");
    assert_eq!(plain.avg_gpu_cycles, profiled.avg_gpu_cycles);
    assert_eq!(plain.avg_total_cycles, profiled.avg_total_cycles);
    assert_eq!(
        plain.display_serviced_bytes,
        profiled.display_serviced_bytes
    );
}

#[test]
fn soc_frames_are_bit_reproducible() {
    use emerald::mem::dram::DramConfig as Dram;
    use emerald::soc::experiment::{run_cell, MemCfgKind, RunParams};
    let m2 = &emerald::scene::workloads::m_models()[1];
    let params = RunParams {
        width: 48,
        height: 32,
        frames: 2,
        dram: Dram::lpddr3_1333(),
        gpu_frame_period: 200_000,
        probe_window: None,
        max_cycles_per_frame: 100_000_000,
    };
    let a = run_cell(m2, MemCfgKind::Dcb, &params);
    let b = run_cell(m2, MemCfgKind::Dcb, &params);
    assert_eq!(a.avg_gpu_cycles, b.avg_gpu_cycles);
    assert_eq!(a.avg_total_cycles, b.avg_total_cycles);
    assert_eq!(a.display_serviced_bytes, b.display_serviced_bytes);
}
