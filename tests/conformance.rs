//! Conformance suite: differential fuzzing of the ISA pipeline and the
//! graphics pipeline against bit-identical references, plus metamorphic
//! invariance over the configuration matrix and the injected-bug canary.
//!
//! Case counts scale with `EMERALD_CONF_CASES` (default 32; CI pushes run
//! 32, the scheduled deep job runs 512). Every failure prints a replayable
//! case seed via `emerald_common::check` and a shrunk counterexample.

use emerald::common::check::{check_n, minimize};
use emerald::common::rng::Xorshift64;
use emerald_conformance::isadiff::{self, shrink_failing};
use emerald_conformance::{
    batch_oracle, check_case, check_case_matrix, check_with_injected_bug, conf_cases, gap_oracle,
    gen_draw, gen_program, run_draw_case, run_draw_case_timed, shrink_batch_candidates,
    shrink_draw_candidates, shrink_gap_candidates, shrink_snap_candidates, skip_dispatch_points,
    snap_oracle, BatchScenario, GapScenario, SnapBug, SnapScenario,
};

/// Shrink-step budget. Generated programs have < 40 instructions, so this
/// always reaches a fixpoint.
const SHRINK_STEPS: usize = 200;

/// Random ISA programs must execute identically on the SIMT timing model
/// and the scalar reference walk: same output memory image (which embeds a
/// per-thread register checksum), same instruction count, same retired
/// warps.
#[test]
fn isa_differential_fuzz() {
    let cases = conf_cases().max(32);
    check_n("isa_differential", cases, |rng| {
        let data_seed = rng.next_u64();
        let gp = gen_program(rng);
        if let Err(div) = check_case(&gp, data_seed) {
            let (small, steps) =
                shrink_failing(gp, |c| check_case(c, data_seed).is_err(), SHRINK_STEPS);
            panic!(
                "{div}\nshrunk in {steps} steps to {} live instructions:\n{}",
                small.live_instrs(),
                small.dump()
            );
        }
    });
}

/// Random draw calls must render pixel-identically on the hardware
/// pipeline and the reference rasterizer, across degenerate, clipped and
/// off-screen geometry and every supported state combination.
#[test]
fn draw_differential_fuzz() {
    let cases = (conf_cases() / 2).max(16);
    check_n("draw_differential", cases, |rng| {
        let case = gen_draw(rng);
        let diff = run_draw_case(&case, &isadiff::base_config());
        if diff != 0 {
            let (small, steps) = minimize(
                case,
                shrink_draw_candidates,
                |c| run_draw_case(c, &isadiff::base_config()) != 0,
                SHRINK_STEPS,
            );
            panic!(
                "draw diverges from reference by {diff} pixels; shrunk in {steps} steps to: {}",
                small.describe()
            );
        }
    });
}

/// Metamorphic invariance: the functional observables of an ISA program
/// are identical across host thread counts (1/2/4), GTO vs. LRR warp
/// scheduling, and halved/quartered cache geometries.
#[test]
fn isa_metamorphic_invariance() {
    let cases = (conf_cases() / 4).max(8);
    check_n("isa_metamorphic", cases, |rng| {
        let data_seed = rng.next_u64();
        let gp = gen_program(rng);
        if let Err(div) = check_case_matrix(&gp, data_seed) {
            let (small, steps) = shrink_failing(
                gp,
                |c| check_case_matrix(c, data_seed).is_err(),
                SHRINK_STEPS,
            );
            panic!(
                "{div}\nshrunk in {steps} steps to {} live instructions:\n{}",
                small.live_instrs(),
                small.dump()
            );
        }
    });
}

/// Metamorphic invariance for draws: every configuration in the matrix
/// must produce the reference image exactly, so all configurations agree
/// with each other.
#[test]
fn draw_metamorphic_invariance() {
    let cases = (conf_cases() / 8).max(4);
    check_n("draw_metamorphic", cases, |rng| {
        let case = gen_draw(rng);
        for (label, cfg) in isadiff::config_matrix() {
            let diff = run_draw_case(&case, &cfg);
            assert_eq!(
                diff,
                0,
                "config {label} diverges by {diff} pixels on: {}",
                case.describe()
            );
        }
    });
}

/// The event-skip axis for draws: at every dispatch point (threads 1/2/4
/// × pool forced/never), a random draw renders pixel-identically to the
/// reference with skipping off and on, and the two modes agree on the
/// simulated frame cycle count bit for bit.
#[test]
fn draw_skip_axis_is_cycle_identical() {
    let cases = (conf_cases() / 8).max(4);
    check_n("draw_skip_axis", cases, |rng| {
        let case = gen_draw(rng);
        for (dlabel, threads, thr) in skip_dispatch_points() {
            let mut off = isadiff::base_config();
            off.threads = threads;
            off.parallel_threshold = thr;
            off.event_skip = false;
            let mut on = off.clone();
            on.event_skip = true;
            let (diff_off, cycles_off) = run_draw_case_timed(&case, &off);
            let (diff_on, cycles_on) = run_draw_case_timed(&case, &on);
            assert_eq!(
                diff_off,
                0,
                "skip-off diverges by {diff_off} pixels at {dlabel} on: {}",
                case.describe()
            );
            assert_eq!(
                diff_on,
                0,
                "skip-on diverges by {diff_on} pixels at {dlabel} on: {}",
                case.describe()
            );
            assert_eq!(
                cycles_off,
                cycles_on,
                "frame cycles differ across the skip axis at {dlabel} on: {}",
                case.describe()
            );
        }
    });
}

/// The event-contract canary: a `next_event` that reports *later* than
/// the truth (the unsafe direction of the skip contract) must be caught
/// by the gap oracle as a completion inside an announced-dead stretch,
/// replay from its seed, and shrink to a minimal still-failing scenario
/// that keeps the injected lag alive.
#[test]
fn under_reported_next_event_is_caught_and_shrunk() {
    // The honest implementation passes...
    gap_oracle(&GapScenario {
        reqs: 32,
        stride: 4096,
        lag: 0,
    })
    .expect("honest next_event reports conform");
    // ...and seeded random lags are always caught, then minimized.
    check_n("under_report_canary", 16, |rng| {
        let sc = GapScenario {
            reqs: rng.range(4, 64),
            stride: 128 * rng.range(1, 64),
            lag: rng.range(1, 32),
        };
        let v = gap_oracle(&sc).expect_err("lagged next_event must be caught");
        assert!(v.acted < v.announced, "violation is inside the gap");
        let (small, _steps) = minimize(
            sc.clone(),
            shrink_gap_candidates,
            |c| gap_oracle(c).is_err(),
            64,
        );
        assert!(small.lag >= 1, "shrinking never reaches the honest lag 0");
        assert!(small.reqs <= sc.reqs && small.lag <= sc.lag);
        gap_oracle(&small).expect_err(&format!(
            "shrunk scenario still fails: {}",
            small.describe()
        ));
    });
}

/// The batch-contract canary: a batch scheduler that deliberately runs a
/// core *past* a response-delivery cycle (the unsafe direction of the
/// `run_batch` contract) must be caught by the twin-core oracle as a
/// diverging request trace or statistic, replay from its seed, and shrink
/// to a minimal still-failing scenario that keeps the overrun alive.
#[test]
fn overrun_batch_window_is_caught_and_shrunk() {
    // The honest scheduler passes...
    batch_oracle(&BatchScenario {
        instrs: 4_000,
        mem_ratio_pct: 100,
        footprint_kb: 4 << 10,
        latency: 60,
        overrun: 0,
    })
    .expect("honest batch windows conform");
    // ...and seeded random overruns are always caught, then minimized.
    check_n("batch_overrun_canary", 8, |rng| {
        let sc = BatchScenario {
            instrs: rng.range(2_000, 8_000),
            mem_ratio_pct: rng.range(60, 101) as u32,
            footprint_kb: 1024 << rng.below(4),
            latency: rng.range(20, 200),
            overrun: rng.range(1, 32),
        };
        let v = batch_oracle(&sc).expect_err("overrun batch window must be caught");
        assert!(!v.detail.is_empty());
        let (small, _steps) = minimize(
            sc.clone(),
            shrink_batch_candidates,
            |c| batch_oracle(c).is_err(),
            64,
        );
        assert!(small.overrun >= 1, "shrinking never reaches the honest 0");
        assert!(small.instrs <= sc.instrs && small.overrun <= sc.overrun);
        batch_oracle(&small).expect_err(&format!(
            "shrunk scenario still fails: {}",
            small.describe()
        ));
    });
}

/// The snapshot canary: both unsafe directions of checkpoint/restore — a
/// corrupted snapshot byte and a component whose hidden state (an RNG
/// stream) is left un-restored — must be caught by the straight-vs-
/// restored twin oracle, replay from their seed, and shrink to a minimal
/// still-failing scenario that keeps the injected bug alive.
#[test]
fn corrupted_or_partial_restore_is_caught_and_shrunk() {
    // The honest implementation passes...
    snap_oracle(&SnapScenario {
        frames: 2,
        offset_pct: 40,
        event_skip: true,
        cpu_batch: false,
        bug: SnapBug::None,
    })
    .expect("honest checkpoint/restore conforms");
    // ...and seeded random injections are always caught, then minimized.
    // The oracle runs a full SoC twice, so the case count stays small.
    check_n("snapshot_canary", 4, |rng| {
        let bug = if rng.chance(0.5) {
            SnapBug::FlipByte {
                pos_pct: rng.below(101) as u32,
                mask: 1 << rng.below(8),
            }
        } else {
            SnapBug::StaleRng
        };
        let sc = SnapScenario {
            frames: 2 + rng.below(2) as u32,
            offset_pct: rng.range(0, 120) as u32,
            event_skip: rng.chance(0.5),
            cpu_batch: rng.chance(0.5),
            bug,
        };
        let v = snap_oracle(&sc).expect_err("injected snapshot bug must be caught");
        assert!(!v.detail.is_empty());
        let (small, _steps) = minimize(
            sc.clone(),
            shrink_snap_candidates,
            |c| snap_oracle(c).is_err(),
            16,
        );
        assert_eq!(small.bug, sc.bug, "shrinking never removes the bug");
        assert!(small.frames <= sc.frames && small.offset_pct <= sc.offset_pct);
        snap_oracle(&small).expect_err(&format!(
            "shrunk scenario still fails: {}",
            small.describe()
        ));
    });
}

/// The host self-profiler as a conformance axis: random ISA programs and
/// draw calls must produce bit-identical observables with profiling
/// enabled — the profiler reads the simulation and the host clock, never
/// the other direction.
#[test]
fn profiling_axis_is_invisible() {
    let cases = (conf_cases() / 8).max(4);
    emerald::obs::prof::set_enabled(true);
    let result = std::panic::catch_unwind(|| {
        check_n("profiling_axis", cases, |rng| {
            let data_seed = rng.next_u64();
            let gp = gen_program(rng);
            check_case(&gp, data_seed).expect("program conforms with profiling on");
            let case = gen_draw(rng);
            let diff = run_draw_case(&case, &isadiff::base_config());
            assert_eq!(
                diff,
                0,
                "draw diverges by {diff} pixels with profiling on: {}",
                case.describe()
            );
        });
    });
    emerald::obs::prof::set_enabled(false);
    emerald::obs::prof::reset();
    if let Err(p) = result {
        std::panic::resume_unwind(p);
    }
}

/// The canary: a deliberately injected ALU bug (`add.u32` → `sub.u32` on
/// the timing side only) must be caught as a divergence, replay from its
/// seed, and shrink to a smaller failing program that still contains the
/// corrupted instruction.
#[test]
fn injected_alu_bug_is_caught_and_shrunk() {
    let mut rng = Xorshift64::new(0x5EED_CA9A_11E5_0001);
    let data_seed = rng.next_u64();
    let gp = gen_program(&mut rng);
    let site = emerald_conformance::bug_site(&gp).expect("prologue always has an add.u32");

    // The healthy program passes...
    check_case(&gp, data_seed).expect("unmutated program conforms");
    // ...the corrupted one must not.
    let div = check_with_injected_bug(&gp, site, data_seed)
        .expect_err("injected ALU bug must be detected");
    let msg = div.to_string();
    assert!(msg.contains("injected_bug"), "report names the run: {msg}");

    // Shrinking with the same oracle keeps the bug site live: candidates
    // that Nop the corrupted add (or drop past it) pass and are rejected.
    let (small, steps) = shrink_failing(
        gp.clone(),
        |c| check_with_injected_bug(c, site, data_seed).is_err(),
        SHRINK_STEPS,
    );
    assert!(steps > 0, "shrinker makes progress");
    assert!(
        small.live_instrs() < gp.live_instrs(),
        "shrunk program is smaller: {} < {}",
        small.live_instrs(),
        gp.live_instrs()
    );
    assert!(
        emerald_conformance::bug_site(&small).is_some(),
        "the corrupted instruction survives shrinking:\n{}",
        small.dump()
    );
    // And the minimized case still reproduces.
    check_with_injected_bug(&small, site, data_seed).expect_err("shrunk case still fails");
}
