//! Oracle tests for the event-driven clocking contract
//! (`emerald_common::event::NextEvent`).
//!
//! Two independent oracles, both driven by the in-tree property harness:
//!
//! 1. **Lockstep skip axis** — seeded random SoC scenarios run twice,
//!    identical in every respect except `GpuConfig::event_skip`, and must
//!    agree bit-for-bit on the clock, the framebuffer and the full stats
//!    registry at every CPU-phase (frame-barrier) boundary.
//! 2. **No early transitions** — components queried for `next_event(now)`
//!    are ticked cycle by cycle through the reported gap and must not
//!    produce a request, a response or a statistics change before the
//!    cycle they announced. Reporting *later* than the truth is the one
//!    unsafe direction of the contract; this oracle is how it would be
//!    caught.

use emerald::common::check::{check_n, env_cases};
use emerald::common::event::NextEvent;
use emerald::common::rng::Xorshift64;
use emerald::prelude::*;
use emerald::scene::mesh::unit_cube;
use emerald::soc::cpu::{CpuWorkload, Phase};

/// Case count for the (expensive) lockstep SoC oracle; override with
/// `EMERALD_SKIP_CASES`.
fn skip_cases() -> u32 {
    env_cases("EMERALD_SKIP_CASES", 3)
}

fn registry_json(soc: &Soc) -> String {
    let mut reg = Registry::new();
    soc.publish(&mut reg);
    reg.to_json()
}

/// Shrinks every `Work` phase so a frame stays test-sized, with an
/// rng-chosen divisor so different cases exercise different phase shapes.
fn shrink(mut w: CpuWorkload, rng: &mut Xorshift64) -> CpuWorkload {
    let div = rng.range(6, 14);
    for p in &mut w.phases {
        if let Phase::Work { instrs, .. } = p {
            *instrs = (*instrs / div).max(64);
        }
    }
    w
}

/// A deterministic cube draw (same construction as the SoC unit tests,
/// parameterized by frame index so multi-frame cases differ per frame).
fn cube_draw(soc: &Soc, frame: u32, aspect: f32) -> DrawCall {
    use emerald::common::math::{Mat4, Vec3};
    let a = 0.4 + frame as f32 * 0.08;
    let mvp = Mat4::perspective(60f32.to_radians(), aspect, 0.1, 50.0).mul_mat4(&Mat4::look_at(
        Vec3::new(2.0 * a.cos(), 1.0, 2.0 * a.sin()),
        Vec3::splat(0.0),
        Vec3::new(0.0, 1.0, 0.0),
    ));
    let fso = FsOptions {
        textured: false,
        ..FsOptions::default()
    };
    DrawCall {
        vb: VertexBuffer::upload(&soc.mem, &unit_cube()),
        topology: Topology::Triangles,
        vs: shaders::vertex_transform(),
        fs: shaders::fragment_shader(fso),
        mvp: mvp.to_array(),
        depth_test: true,
        depth_write: true,
        blend: false,
        texture: None,
    }
}

/// Draws a random SoC scenario from `rng`: memory-system kind, DRAM
/// timing, resolution, frame deadline and CPU-core mix all vary.
fn random_config(rng: &mut Xorshift64, event_skip: bool) -> SocConfig {
    let kind = [MemCfgKind::Bas, MemCfgKind::Dcb, MemCfgKind::Hmc][rng.below(3) as usize];
    let dram = if rng.chance(0.5) {
        DramConfig::lpddr3_1333()
    } else {
        DramConfig::lpddr3_1600()
    };
    let (w, h) = if rng.chance(0.5) { (48, 32) } else { (64, 48) };
    let period = rng.range(150_000, 400_000);
    let mut cfg = SocConfig::case_study_1(kind.build(dram), w, h, period);
    let extras = [
        CpuWorkload::streamer(),
        CpuWorkload::compute(),
        CpuWorkload::mixed(),
    ];
    let mut workloads = vec![shrink(CpuWorkload::driver(), rng)];
    for e in extras {
        if rng.chance(0.5) {
            workloads.push(shrink(e, rng));
        }
    }
    cfg.cpu_workloads = workloads;
    cfg.gpu.event_skip = event_skip;
    cfg
}

/// Oracle 1: skip-off and skip-on instances of the *same* random scenario
/// advance in lockstep — identical clock, identical per-frame records,
/// identical framebuffer and registry snapshot at every frame barrier.
#[test]
fn random_soc_scenarios_are_skip_invariant() {
    check_n("soc_skip_axis", skip_cases(), |rng| {
        // Sample once, then instantiate twice so both sides see the exact
        // same scenario. The rng is re-seeded per case by the harness.
        let scenario = rng.next_u64();
        let cfg_off = random_config(&mut Xorshift64::new(scenario), false);
        let cfg_on = random_config(&mut Xorshift64::new(scenario), true);
        assert!(!cfg_off.gpu.event_skip && cfg_on.gpu.event_skip);
        let frames = 1 + rng.below(2) as u32;
        let aspect = cfg_off.width as f32 / cfg_off.height as f32;
        let mut off = Soc::new(cfg_off);
        let mut on = Soc::new(cfg_on);
        for f in 0..frames {
            let d_off = cube_draw(&off, f, aspect);
            let d_on = cube_draw(&on, f, aspect);
            let r_off = off.run_frame(vec![d_off], 60_000_000);
            let r_on = on.run_frame(vec![d_on], 60_000_000);
            assert_eq!(
                r_off.gpu_cycles, r_on.gpu_cycles,
                "gpu_cycles diverged at frame {f}"
            );
            assert_eq!(
                r_off.total_cycles, r_on.total_cycles,
                "total_cycles diverged at frame {f}"
            );
            assert_eq!(off.now(), on.now(), "clock diverged at frame {f}");
            assert_eq!(
                off.rt.read_color(&off.mem),
                on.rt.read_color(&on.mem),
                "framebuffer diverged at frame {f}"
            );
            assert_eq!(
                registry_json(&off),
                registry_json(&on),
                "registry diverged at frame {f}"
            );
        }
    });
}

fn memsys_stats_json(ms: &MemorySystem) -> String {
    let mut reg = Registry::new();
    ms.publish(&mut reg, "mem");
    reg.to_json()
}

/// Oracle 2a: the memory system never completes a request or changes a
/// statistic strictly before its reported `next_event`. Random read/write
/// bursts from random agents are pushed through a random configuration;
/// whenever no external input remains, the gap up to the announced wake
/// cycle is ticked one cycle at a time and must be a no-op.
#[test]
fn memsys_never_acts_before_next_event() {
    use emerald::common::types::{AccessKind, TrafficSource};
    use emerald::mem::req::{MemRequest, ReqIdGen};
    check_n(
        "memsys_next_event_oracle",
        env_cases("EMERALD_SKIP_CASES", 8),
        |rng| {
            let kind = [MemCfgKind::Bas, MemCfgKind::Dcb, MemCfgKind::Hmc][rng.below(3) as usize];
            let dram = if rng.chance(0.5) {
                DramConfig::lpddr3_1333()
            } else {
                DramConfig::lpddr3_1600()
            };
            let mut ms = MemorySystem::new(kind.build(dram));
            let mut ids = ReqIdGen::new();
            let sources = [
                TrafficSource::Gpu,
                TrafficSource::Cpu(0),
                TrafficSource::Cpu(1),
                TrafficSource::Display,
            ];
            let mut pending: Vec<(u64, AccessKind, TrafficSource)> = (0..rng.range(20, 60))
                .map(|_| {
                    (
                        rng.below(1 << 22) & !127,
                        if rng.chance(0.3) {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        },
                        sources[rng.below(4) as usize],
                    )
                })
                .collect();
            let mut now = 0u64;
            let mut gaps_checked = 0u32;
            while (!pending.is_empty() || !ms.is_idle()) && now < 1_000_000 {
                // Trickle the burst in (external input), a few per cycle.
                while let Some(&(addr, kind, source)) = pending.last() {
                    let req = MemRequest {
                        id: ids.next_id(),
                        addr,
                        bytes: 128,
                        kind,
                        source,
                        issued: now,
                    };
                    if !ms.can_accept(&req) || rng.chance(0.4) {
                        break;
                    }
                    ms.enqueue(req, now).expect("can_accept said yes");
                    pending.pop();
                }
                ms.tick(now);
                let _ = ms.drain_finished(now);
                if pending.is_empty() {
                    // No external input left: the announced gap must be dead.
                    match ms.next_event(now) {
                        Some(t) if t > now + 1 => {
                            let snap = memsys_stats_json(&ms);
                            for c in now + 1..t {
                                ms.tick(c);
                                assert!(
                                    ms.drain_finished(c).is_empty(),
                                    "response completed at {c}, before announced wake {t}"
                                );
                            }
                            assert_eq!(
                                snap,
                                memsys_stats_json(&ms),
                                "stats changed inside announced-dead gap ending at {t}"
                            );
                            gaps_checked += 1;
                            now = t - 1;
                        }
                        Some(_) => {}
                        None => {
                            // Claims it will never act again: hold it to that.
                            let snap = memsys_stats_json(&ms);
                            for c in now + 1..now + 200 {
                                ms.tick(c);
                                assert!(ms.drain_finished(c).is_empty());
                            }
                            assert_eq!(snap, memsys_stats_json(&ms));
                            assert!(ms.is_idle(), "next_event None but not idle");
                            break;
                        }
                    }
                }
                now += 1;
            }
            assert!(
                pending.is_empty() && ms.is_idle(),
                "burst did not drain within the cycle budget"
            );
            // In-service DRAM bursts take many cycles, so real gaps must have
            // appeared — otherwise the oracle silently checked nothing.
            assert!(gaps_checked > 0, "no skip gaps were ever announced");
        },
    );
}

/// Oracle 2b: the display controller with instant memory (responses
/// credited the same cycle) is fully self-driven, so every announced gap —
/// beam catch-up between prefetch batches, and the tail of each refresh
/// period — must tick as a pure no-op: no requests, no stat changes.
#[test]
fn display_never_acts_before_next_event() {
    use emerald::mem::req::ReqIdGen;
    use emerald::soc::display::DisplayController;
    check_n("display_next_event_oracle", 16, |rng| {
        let fb_bytes = [16u64 << 10, 64 << 10][rng.below(2) as usize];
        let period = rng.range(4_000, 40_000);
        let mut d = DisplayController::new(0x1000, fb_bytes, period);
        let mut ids = ReqIdGen::new();
        let mut now = 0u64;
        let mut gaps_checked = 0u32;
        let horizon = 3 * period;
        while now < horizon {
            d.tick(now, &mut ids);
            for r in d.drain_requests() {
                d.on_response(r.bytes); // instant memory
            }
            let t = d
                .next_event(now)
                .expect("display always has a next period boundary");
            assert!(t > now, "next_event must be in the future");
            if t > now + 1 {
                let snap = d.stats();
                for c in now + 1..t {
                    d.tick(c, &mut ids);
                    assert!(
                        d.drain_requests().is_empty() && !d.has_pending(),
                        "display issued work at {c}, before announced wake {t}"
                    );
                }
                let after = d.stats();
                assert_eq!(snap.requests, after.requests);
                assert_eq!(snap.serviced_bytes, after.serviced_bytes);
                assert_eq!(snap.frames_completed, after.frames_completed);
                assert_eq!(snap.frames_aborted, after.frames_aborted);
                gaps_checked += 1;
                now = t;
            } else {
                now += 1;
            }
        }
        // With instant memory the controller spends most of its time
        // waiting on the beam, so gaps must dominate.
        assert!(gaps_checked > 0, "no skip gaps were ever announced");
        assert_eq!(d.stats().frames_aborted, 0, "instant memory underran");
        assert!(d.stats().frames_completed >= 2);
    });
}
