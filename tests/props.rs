//! Workspace-level property tests: the strongest invariant we have is
//! that the *hardware* pipeline and the *software* reference renderer
//! agree bit-for-bit on arbitrary geometry.
//!
//! Runs on the in-tree deterministic harness (`emerald::common::check`);
//! the offline build has no proptest.

use emerald::common::check::check_n;
use emerald::common::rng::Xorshift64;
use emerald::core::reference::{diff_pixels, render_reference};
use emerald::core::shaders::{self, FsOptions};
use emerald::core::state::{Topology, VertexBuffer};
use emerald::prelude::*;

fn arbitrary_mesh(tris: usize, seed: u64) -> Mesh {
    let mut rng = Xorshift64::new(seed);
    let mut m = Mesh::default();
    for _ in 0..tris * 3 {
        let r = |rng: &mut Xorshift64| rng.next_f32() * 2.0 - 1.0;
        let p = Vec3::new(r(&mut rng), r(&mut rng), r(&mut rng));
        m.positions.push(p);
        m.normals.push(p.normalized());
        m.uvs.push(emerald::common::math::Vec2::new(
            rng.next_f32(),
            rng.next_f32(),
        ));
    }
    m.indices = (0..(tris * 3) as u32).collect();
    m
}

/// Random triangle soups must render identically on the timing model
/// and the reference, for both opaque and blended state.
#[test]
fn hardware_equals_reference_on_random_meshes() {
    check_n("hardware_equals_reference", 8, |rng| {
        let seed = rng.below(1000);
        let blend = rng.chance(0.5);
        let (w, h) = (48u32, 32u32);
        let mem = SharedMem::with_capacity(1 << 26);
        let rt = RenderTarget::alloc(&mem, w, h);
        rt.clear(&mem, [0.0; 4], 1.0);
        let mesh = arbitrary_mesh(12, seed);
        let fso = FsOptions {
            textured: false,
            depth_write: !blend,
            blend,
            alpha: if blend { Some(0.6) } else { None },
            ..FsOptions::default()
        };
        let mvp = Mat4::perspective(60f32.to_radians(), w as f32 / h as f32, 0.3, 30.0)
            .mul_mat4(&Mat4::translate(Vec3::new(0.0, 0.0, -2.5)));
        let dc = DrawCall {
            vb: VertexBuffer::upload(&mem, &mesh),
            topology: Topology::Triangles,
            vs: shaders::vertex_transform(),
            fs: shaders::fragment_shader(fso),
            mvp: mvp.to_array(),
            depth_test: fso.depth_test,
            depth_write: fso.depth_write,
            blend: fso.blend,
            texture: None,
        };

        let ref_rt = RenderTarget::alloc(&mem, w, h);
        ref_rt.clear(&mem, [0.0; 4], 1.0);
        render_reference(&mem, ref_rt, &dc, fso);

        let mut r = GpuRenderer::new(
            GpuConfig::tiny(),
            GfxConfig::case_study_2(),
            mem.clone(),
            rt,
        );
        let mut port = SimpleMemPort::new(MemorySystem::new(MemorySystemConfig::baseline(
            2,
            DramConfig::lpddr3_1600(),
        )));
        r.draw(dc);
        r.run_frame(&mut port, 200_000_000);
        assert_eq!(
            diff_pixels(&rt.read_color(&mem), &ref_rt.read_color(&mem)),
            0
        );
    });
}

/// Strip topology must also match (exercises alternating winding and
/// vertex-warp overlap).
#[test]
fn strips_match_reference() {
    check_n("strips_match_reference", 8, |rng| {
        let seed = rng.below(500);
        let (w, h) = (48u32, 32u32);
        let mem = SharedMem::with_capacity(1 << 26);
        let rt = RenderTarget::alloc(&mem, w, h);
        rt.clear(&mem, [0.0; 4], 1.0);
        let mesh = arbitrary_mesh(14, seed ^ 0xABCD);
        let fso = FsOptions {
            textured: false,
            ..FsOptions::default()
        };
        let mvp = Mat4::perspective(60f32.to_radians(), 1.5, 0.3, 30.0)
            .mul_mat4(&Mat4::translate(Vec3::new(0.0, 0.0, -2.5)));
        let mut vb = VertexBuffer::upload(&mem, &mesh);
        vb.indices = (0..14u32 * 3).collect(); // one long strip
        let dc = DrawCall {
            vb,
            topology: Topology::TriangleStrip,
            vs: shaders::vertex_transform(),
            fs: shaders::fragment_shader(fso),
            mvp: mvp.to_array(),
            depth_test: true,
            depth_write: true,
            blend: false,
            texture: None,
        };
        let ref_rt = RenderTarget::alloc(&mem, w, h);
        ref_rt.clear(&mem, [0.0; 4], 1.0);
        render_reference(&mem, ref_rt, &dc, fso);
        let mut r = GpuRenderer::new(
            GpuConfig::tiny(),
            GfxConfig::case_study_2(),
            mem.clone(),
            rt,
        );
        let mut port = SimpleMemPort::new(MemorySystem::new(MemorySystemConfig::baseline(
            2,
            DramConfig::lpddr3_1600(),
        )));
        r.draw(dc);
        r.run_frame(&mut port, 200_000_000);
        assert_eq!(
            diff_pixels(&rt.read_color(&mem), &ref_rt.read_color(&mem)),
            0
        );
    });
}
