//! DFSL on the real pipeline: the controller must pick the measured-best
//! WT and the run phase must not be slower than the worst static choice.

use emerald::core::session::SceneBinding;
use emerald::prelude::*;

#[test]
fn dfsl_converges_to_measured_best_wt() {
    let (w, h) = (64u32, 48u32);
    let wl = emerald::scene::workloads::w_models().swap_remove(2);
    let mem = SharedMem::with_capacity(1 << 26);
    let rt = RenderTarget::alloc(&mem, w, h);
    let mut r = GpuRenderer::new(
        GpuConfig::tiny(),
        GfxConfig::case_study_2(),
        mem.clone(),
        rt,
    );
    let mut port = SimpleMemPort::new(MemorySystem::new(MemorySystemConfig::baseline(
        2,
        DramConfig::lpddr3_1600(),
    )));
    let binding = SceneBinding::new(&mem, &wl);
    let cfg = DfslConfig {
        min_wt: 1,
        max_wt: 4,
        run_frames: 3,
    };
    let mut dfsl = DfslController::new(cfg);
    let mut eval_times = Vec::new();
    for f in 0..cfg.eval_frames() + cfg.run_frames {
        let wt = dfsl.wt_for_frame();
        rt.clear(&mem, [0.0; 4], 1.0);
        r.set_wt(wt);
        r.draw(binding.draw_for_frame(f, w as f32 / h as f32, false));
        let s = r.run_frame(&mut port, 100_000_000);
        if f < cfg.eval_frames() {
            eval_times.push(s.cycles);
        }
        dfsl.observe(s.cycles);
    }
    let best_measured = eval_times
        .iter()
        .enumerate()
        .min_by_key(|(_, &c)| c)
        .map(|(i, _)| i as u32 + 1)
        .unwrap();
    assert_eq!(dfsl.best_wt(), best_measured);
}

#[test]
fn draw_level_dfsl_tracks_two_draws_independently() {
    use emerald::core::dfsl::DrawLevelDfsl;
    let (w, h) = (64u32, 48u32);
    let mem = SharedMem::with_capacity(1 << 26);
    let rt = RenderTarget::alloc(&mem, w, h);
    let mut r = GpuRenderer::new(
        GpuConfig::tiny(),
        GfxConfig::case_study_2(),
        mem.clone(),
        rt,
    );
    let mut port = SimpleMemPort::new(MemorySystem::new(MemorySystemConfig::baseline(
        2,
        DramConfig::lpddr3_1600(),
    )));
    // Two draws per frame: the room (geometry heavy) and a sphere.
    let models = emerald::scene::workloads::w_models();
    let room = emerald::core::session::SceneBinding::new(&mem, &models[0]);
    let blob = emerald::core::session::SceneBinding::new(&mem, &models[1]);
    let cfg = DfslConfig {
        min_wt: 1,
        max_wt: 3,
        run_frames: 2,
    };
    let mut dfsl = DrawLevelDfsl::new(cfg);
    for f in 0..(cfg.eval_frames() + cfg.run_frames) {
        rt.clear(&mem, [0.0; 4], 1.0);
        let wt0 = dfsl.wt_for_draw(0);
        let wt1 = dfsl.wt_for_draw(1);
        r.draw_with_wt(room.draw_for_frame(f, w as f32 / h as f32, false), wt0);
        r.draw_with_wt(blob.draw_for_frame(f, w as f32 / h as f32, false), wt1);
        r.run_frame(&mut port, 200_000_000);
        let times = r.draw_times().to_vec();
        assert_eq!(times.len(), 2, "two draws per frame");
        assert!(times.iter().all(|&t| t > 0));
        dfsl.observe_draw(0, times[0]);
        dfsl.observe_draw(1, times[1]);
    }
    let best = dfsl.best_wts();
    assert_eq!(best.len(), 2);
    assert!(best.iter().all(|&wt| (1..=3).contains(&wt)));
}
