//! End-to-end image validation: the hardware pipeline must produce
//! bit-identical images to the software reference renderer across
//! workloads and render states.

use emerald::core::reference::{diff_pixels, render_reference};
use emerald::core::session::SceneBinding;
use emerald::prelude::*;

const W: u32 = 64;
const H: u32 = 48;

fn setup(mem: &SharedMem) -> (GpuRenderer, SimpleMemPort, RenderTarget) {
    let rt = RenderTarget::alloc(mem, W, H);
    rt.clear(mem, [0.0; 4], 1.0);
    let r = GpuRenderer::new(
        GpuConfig::tiny(),
        GfxConfig::case_study_2(),
        mem.clone(),
        rt,
    );
    let port = SimpleMemPort::new(MemorySystem::new(MemorySystemConfig::baseline(
        2,
        DramConfig::lpddr3_1600(),
    )));
    (r, port, rt)
}

fn check_workload(index: usize, from_w: bool) {
    let mem = SharedMem::with_capacity(1 << 26);
    let (mut r, mut port, rt) = setup(&mem);
    let wl = if from_w {
        emerald::scene::workloads::w_models().swap_remove(index)
    } else {
        emerald::scene::workloads::m_models().swap_remove(index)
    };
    let binding = SceneBinding::new(&mem, &wl);
    let dc = binding.draw_for_frame(2, W as f32 / H as f32, false);

    let ref_rt = RenderTarget::alloc(&mem, W, H);
    ref_rt.clear(&mem, [0.0; 4], 1.0);
    render_reference(&mem, ref_rt, &dc, binding.fs_options(false));

    r.draw(dc);
    let stats = r.run_frame(&mut port, 100_000_000);
    assert!(stats.fragments > 50, "{}: too few fragments", wl.id);
    assert_eq!(
        diff_pixels(&rt.read_color(&mem), &ref_rt.read_color(&mem)),
        0,
        "{}: hardware image differs from reference",
        wl.id
    );
}

#[test]
fn w2_spot_matches_reference() {
    check_workload(1, true);
}

#[test]
fn w3_cube_matches_reference() {
    check_workload(2, true);
}

#[test]
fn w5_translucent_matches_reference() {
    check_workload(4, true);
}

#[test]
fn m3_mask_matches_reference() {
    check_workload(2, false);
}

#[test]
fn m4_triangles_matches_reference() {
    check_workload(3, false);
}

#[test]
fn wt_size_does_not_change_the_image() {
    let mem = SharedMem::with_capacity(1 << 26);
    let (mut r, mut port, rt) = setup(&mem);
    let wl = emerald::scene::workloads::w_models().swap_remove(2);
    let binding = SceneBinding::new(&mem, &wl);
    let mut images = Vec::new();
    for wt in [1u32, 3, 7] {
        rt.clear(&mem, [0.0; 4], 1.0);
        r.set_wt(wt);
        r.draw(binding.draw_for_frame(1, W as f32 / H as f32, false));
        r.run_frame(&mut port, 100_000_000);
        images.push(rt.read_color(&mem));
    }
    assert_eq!(diff_pixels(&images[0], &images[1]), 0);
    assert_eq!(diff_pixels(&images[0], &images[2]), 0);
}

#[test]
fn late_z_image_equals_early_z() {
    let mem = SharedMem::with_capacity(1 << 26);
    let (mut r, mut port, rt) = setup(&mem);
    let wl = emerald::scene::workloads::w_models().swap_remove(3);
    let binding = SceneBinding::new(&mem, &wl);
    let mut images = Vec::new();
    for late in [false, true] {
        rt.clear(&mem, [0.0; 4], 1.0);
        r.draw(binding.draw_for_frame(0, W as f32 / H as f32, late));
        r.run_frame(&mut port, 100_000_000);
        images.push(rt.read_color(&mem));
    }
    assert_eq!(diff_pixels(&images[0], &images[1]), 0);
}
