//! GPGPU-mode integration: compute kernels on the unified SIMT model,
//! checked against host references.

use emerald::gpu::GlobalMemCtx;
use emerald::prelude::*;
use std::sync::Arc;

fn setup() -> (Gpu, GlobalMemCtx, SimpleMemPort, SharedMem) {
    let mem = SharedMem::with_capacity(1 << 24);
    (
        Gpu::new(GpuConfig::tiny()),
        GlobalMemCtx::new(mem.clone()),
        SimpleMemPort::new(MemorySystem::new(MemorySystemConfig::baseline(
            2,
            DramConfig::lpddr3_1600(),
        ))),
        mem,
    )
}

#[test]
fn vector_scale_with_divergent_clamp() {
    let (mut gpu, mut ctx, mut port, mem) = setup();
    let n = 256usize;
    let buf = mem.alloc((n * 4) as u64, 128);
    for i in 0..n {
        mem.write_f32(buf + (i * 4) as u64, i as f32 - 128.0);
    }
    // out[i] = max(x, 0) * 2 via a divergent branch.
    let src = "
        mov.b32 r0, %input0
        shl.u32 r1, r0, 2
        add.u32 r1, r1, %param0
        ld.global.b32 r2, [r1+0]
        setp.lt.f32 p0, r2, 0.0
        @p0 bra NEG, reconv=JOIN
        mul.f32 r3, r2, 2.0
        bra JOIN, reconv=JOIN
        NEG:
        mov.b32 r3, 0.0
        JOIN:
        st.global.b32 [r1+0], r3
        exit";
    let k = Kernel::linear(Arc::new(assemble(src).unwrap()), n, 64, vec![buf as u32]);
    gpu.launch_kernel(k);
    gpu.run_to_idle(0, 5_000_000, &mut ctx, &mut port);
    for i in 0..n {
        let x = i as f32 - 128.0;
        let want = if x < 0.0 { 0.0 } else { x * 2.0 };
        assert_eq!(mem.read_f32(buf + (i * 4) as u64), want, "elem {i}");
    }
}

#[test]
fn block_reduction_with_shared_memory_and_barriers() {
    let (mut gpu, mut ctx, mut port, mem) = setup();
    // Each 64-thread CTA reduces its elements into out[cta] via shared
    // memory and a barrier tree.
    let n = 256usize;
    let input = mem.alloc((n * 4) as u64, 128);
    let out = mem.alloc(64, 128);
    for i in 0..n {
        mem.write_u32(input + (i * 4) as u64, 1 + (i as u32 % 7));
    }
    let src = "
        mov.b32 r0, %input2        // tid in cta
        mov.b32 r1, %input0        // global id
        shl.u32 r2, r1, 2
        add.u32 r2, r2, %param0
        ld.global.b32 r3, [r2+0]
        // shared[tid] = x
        shl.u32 r4, r0, 2
        add.u32 r4, r4, %input3    // shared base
        st.shared.b32 [r4+0], r3
        bar.sync
        // tree reduction: strides 32,16,8,4,2,1
        mov.b32 r5, 32
        LOOP:
        setp.lt.u32 p0, r0, r5
        @p0 add.u32 r6, r0, r5
        @p0 shl.u32 r6, r6, 2
        @p0 add.u32 r6, r6, %input3
        @p0 ld.shared.b32 r7, [r6+0]
        @p0 ld.shared.b32 r8, [r4+0]
        @p0 add.u32 r8, r8, r7
        @p0 st.shared.b32 [r4+0], r8
        bar.sync
        shr.u32 r5, r5, 1
        setp.ge.u32 p1, r5, 1
        @p1 bra LOOP, reconv=DONE
        DONE:
        setp.eq.u32 p2, r0, 0
        @p2 mov.b32 r9, %input1    // cta id
        @p2 shl.u32 r9, r9, 2
        @p2 add.u32 r9, r9, %param1
        @p2 ld.shared.b32 r10, [r4+0]
        @p2 st.global.b32 [r9+0], r10
        exit";
    let mut k = Kernel::linear(
        Arc::new(assemble(src).unwrap()),
        n,
        64,
        vec![input as u32, out as u32],
    );
    k.shared_bytes = 64 * 4;
    gpu.launch_kernel(k);
    gpu.run_to_idle(0, 20_000_000, &mut ctx, &mut port);
    for cta in 0..4u64 {
        let want: u32 = (0..64u32).map(|t| 1 + ((cta as u32 * 64 + t) % 7)).sum();
        assert_eq!(mem.read_u32(out + cta * 4), want, "cta {cta}");
    }
}

#[test]
fn graphics_and_compute_share_the_same_cores() {
    // The unified-model claim, directly: run a compute kernel, then render
    // a frame, on the same GPU instance.
    let mem = SharedMem::with_capacity(1 << 26);
    let rt = RenderTarget::alloc(&mem, 48, 32);
    rt.clear(&mem, [0.0; 4], 1.0);
    let mut r = GpuRenderer::new(
        GpuConfig::tiny(),
        GfxConfig::case_study_2(),
        mem.clone(),
        rt,
    );
    let mut port = SimpleMemPort::new(MemorySystem::new(MemorySystemConfig::baseline(
        2,
        DramConfig::lpddr3_1600(),
    )));

    let buf = mem.alloc(1024, 128);
    let k = Kernel::linear(
        Arc::new(
            assemble(
                "mov.b32 r0, %input0\nshl.u32 r1, r0, 2\nadd.u32 r1, r1, %param0\nst.global.b32 [r1+0], r0\nexit",
            )
            .unwrap(),
        ),
        128,
        64,
        vec![buf as u32],
    );
    let kid = r.gpu.launch_kernel(k);
    // Drive the kernel through the renderer's clock via empty frames.
    let mut ctx_done = false;
    for _ in 0..3 {
        r.run_frame(&mut port, 10_000_000);
        if r.gpu.kernel_done(kid) {
            ctx_done = true;
            break;
        }
    }
    assert!(ctx_done, "kernel did not finish");
    assert_eq!(mem.read_u32(buf + 4 * 100), 100);

    // Now render on the same cores.
    let wl = emerald::scene::workloads::w_models().swap_remove(2);
    let binding = emerald::core::session::SceneBinding::new(&mem, &wl);
    r.draw(binding.draw_for_frame(0, 1.5, false));
    let stats = r.run_frame(&mut port, 50_000_000);
    assert!(stats.fragments > 50);
}
