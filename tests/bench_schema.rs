//! Guards the `emerald-bench-v1` report schema: both a synthetic report
//! built through [`emerald::bench_report`] and the committed
//! `BENCH_frame.json` must parse with the in-tree strict JSON parser and
//! carry the fields downstream tooling greps for. The per-run `profile`
//! block (host self-profiler, `EMERALD_PROFILE=1`) is optional: reports
//! without it must keep validating unchanged.

use emerald::bench_report::{to_json, PhaseTimes, PoolDispatch, Run, Workload};
use emerald::common::json::Json;
use emerald::obs::prof::{active_bucket_label, ACTIVE_BUCKETS};
use emerald::obs::{HostPhase, HostProfile};

fn assert_profile_shape(p: &Json) {
    for field in [
        "ticks",
        "sampled_ticks",
        "loop_ms",
        "phase_sum_ms",
        "gpu_cycles",
        "gpu_zero_active_cycles",
        "gpu_skippable_cycles",
        "gpu_skippable_frac",
        "soc_cycles",
        "soc_skippable_cycles",
        "soc_skippable_frac",
        "cpu_batches",
        "cpu_batch_cycles",
    ] {
        assert!(
            p.get(field).and_then(|v| v.as_num()).is_some(),
            "profile field {field} missing or non-numeric"
        );
    }
    // phases_ns holds only nonzero phases, each keyed by a known name.
    let known: Vec<&str> = HostPhase::all().iter().map(|p| p.name()).collect();
    let phases = p.get("phases_ns").expect("phases_ns object");
    for name in &known {
        if let Some(v) = phases.get(name) {
            assert!(v.as_num().is_some(), "phase {name} non-numeric");
        }
    }
    let hist = p.get("active_hist").expect("active_hist object");
    for b in 0..ACTIVE_BUCKETS {
        assert!(
            hist.get(active_bucket_label(b))
                .and_then(|v| v.as_num())
                .is_some(),
            "hist bucket {b} missing"
        );
    }
    let pool = p.get("pool").expect("pool object");
    for field in ["threads", "runs", "utilization", "imbalance"] {
        assert!(pool.get(field).and_then(|v| v.as_num()).is_some());
    }
    assert!(pool.get("busy_ms").and_then(|v| v.as_arr()).is_some());
}

fn assert_v1_shape(doc: &Json, require_phases: bool) {
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("emerald-bench-v1"),
        "schema tag"
    );
    assert!(doc.get("smoke").and_then(|s| s.as_bool()).is_some());
    assert!(doc.get("host_threads").and_then(|s| s.as_num()).is_some());
    // Optional additions must be numeric when present.
    if let Some(pct) = doc.get("profile_overhead_pct") {
        assert!(pct.as_num().is_some(), "profile_overhead_pct non-numeric");
    }
    let workloads = doc
        .get("workloads")
        .and_then(|w| w.as_arr())
        .expect("workloads array");
    assert!(!workloads.is_empty());
    for w in workloads {
        assert!(w.get("name").and_then(|n| n.as_str()).is_some());
        let runs = w.get("runs").and_then(|r| r.as_arr()).expect("runs array");
        assert!(!runs.is_empty());
        let mut threads_seen = Vec::new();
        for r in runs {
            for field in [
                "threads",
                "wall_ms",
                "cycles",
                "cycles_per_sec",
                "speedup_vs_1t",
            ] {
                assert!(
                    r.get(field).and_then(|v| v.as_num()).is_some(),
                    "run field {field} missing or non-numeric"
                );
            }
            threads_seen.push(r.get("threads").unwrap().as_num().unwrap() as u64);
            if require_phases {
                let phases = r.get("phases").expect("phases object");
                for field in ["setup_ms", "sim_ms", "readback_ms"] {
                    assert!(
                        phases.get(field).and_then(|v| v.as_num()).is_some(),
                        "phase field {field} missing or non-numeric"
                    );
                }
            }
            if let Some(p) = r.get("profile") {
                assert_profile_shape(p);
            }
            // Sweep rows additionally carry the session aggregate pair;
            // both keys appear together or not at all.
            match (r.get("sessions"), r.get("sessions_per_sec")) {
                (None, None) => {}
                (Some(n), Some(sps)) => {
                    assert!(n.as_num().is_some(), "sessions non-numeric");
                    assert!(sps.as_num().is_some(), "sessions_per_sec non-numeric");
                }
                _ => panic!("sessions and sessions_per_sec must appear together"),
            }
        }
        // The 1-thread baseline comes first; speedup there is 1.0 (or 0.0
        // for a degenerate zero-time run, which must still serialize).
        assert_eq!(threads_seen[0], 1, "first run is the 1-thread baseline");
        let base_wall = runs[0].get("wall_ms").unwrap().as_num().unwrap();
        let base_speedup = runs[0].get("speedup_vs_1t").unwrap().as_num().unwrap();
        if base_wall > 0.0 {
            assert!((base_speedup - 1.0).abs() < 1e-9);
        }
    }
    // Dispatch-latency microbenchmark rows (may be empty, but the array
    // itself is part of the v1 shape since the adaptive-dispatch work).
    let dispatch = doc
        .get("pool_dispatch")
        .and_then(|d| d.as_arr())
        .expect("pool_dispatch array");
    for d in dispatch {
        assert!(d.get("threads").and_then(|v| v.as_num()).is_some());
        assert!(d.get("ns_per_run").and_then(|v| v.as_num()).is_some());
    }
}

fn synthetic_profile() -> HostProfile {
    let mut p = HostProfile {
        ticks: 1220,
        sampled: 20,
        gpu_cycles: 1220,
        gpu_zero_active: 100,
        gpu_skippable: 60,
        soc_cycles: 1220,
        soc_skippable: 300,
        pool_threads: 4,
        pool_runs: 800,
        pool_busy_ns: vec![900_000, 850_000, 870_000, 910_000],
        ..Default::default()
    };
    p.phase_ns[HostPhase::GpuExecute as usize] = 6_000_000;
    p.phase_ns[HostPhase::GpuDram as usize] = 2_000_000;
    p.phase_ns[HostPhase::SocMem as usize] = 1_500_000;
    p.active_hist[0] = 100;
    p.active_hist[4] = 1120;
    p
}

fn synthetic_workloads(with_profile: bool) -> Vec<Workload> {
    vec![
        Workload {
            name: "alpha",
            runs: vec![
                Run {
                    threads: 1,
                    wall_ms: 12.5,
                    cycles: 4000,
                    phases: PhaseTimes {
                        setup_ms: 2.0,
                        sim_ms: 10.0,
                        readback_ms: 0.5,
                    },
                    profile: with_profile.then(synthetic_profile),
                    sessions: None,
                },
                Run {
                    threads: 4,
                    wall_ms: 25.0,
                    cycles: 4000,
                    phases: PhaseTimes {
                        setup_ms: 2.0,
                        sim_ms: 22.5,
                        readback_ms: 0.5,
                    },
                    profile: with_profile.then(synthetic_profile),
                    sessions: None,
                },
            ],
        },
        Workload {
            name: "beta",
            runs: vec![Run {
                threads: 1,
                wall_ms: 0.0, // degenerate timings must still serialize
                cycles: 0,
                phases: PhaseTimes::default(),
                profile: None,
                sessions: None,
            }],
        },
        // A sweep-style workload: `threads` is the scheduler worker
        // count and `cycles` the sum across `sessions` concurrent
        // simulations.
        Workload {
            name: "sweep",
            runs: vec![Run {
                threads: 1,
                wall_ms: 50.0,
                cycles: 80_000,
                phases: PhaseTimes {
                    setup_ms: 0.0,
                    sim_ms: 50.0,
                    readback_ms: 0.0,
                },
                profile: None,
                sessions: Some(8),
            }],
        },
    ]
}

#[test]
fn synthetic_report_matches_schema() {
    let workloads = synthetic_workloads(false);
    let dispatch = [
        PoolDispatch {
            threads: 2,
            ns_per_run: 900.0,
        },
        PoolDispatch {
            threads: 4,
            ns_per_run: 2100.0,
        },
    ];
    let text = to_json(&workloads, &dispatch, true, None);
    let doc = Json::parse(&text).expect("report parses as strict JSON");
    assert_v1_shape(&doc, true);

    // A profile-less report carries neither the optional key nor blocks.
    assert!(doc.get("profile_overhead_pct").is_none());

    // The >1-thread slowdown this breakdown was added for is visible:
    // sim_ms dominates and scales with wall_ms.
    let runs = doc.get("workloads").unwrap().as_arr().unwrap()[0]
        .get("runs")
        .unwrap()
        .as_arr()
        .unwrap();
    assert!(runs.iter().all(|r| r.get("profile").is_none()));
    let sim0 = runs[0]
        .get("phases")
        .unwrap()
        .get("sim_ms")
        .unwrap()
        .as_num()
        .unwrap();
    let sim1 = runs[1]
        .get("phases")
        .unwrap()
        .get("sim_ms")
        .unwrap()
        .as_num()
        .unwrap();
    assert!(sim1 > sim0);
    assert!(runs[1].get("speedup_vs_1t").unwrap().as_num().unwrap() < 1.0);

    // The sweep-style workload serializes its session aggregate: 8
    // sessions over 50 ms is 160 sessions/sec.
    let sweep = doc
        .get("workloads")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .find(|w| w.get("name").and_then(|n| n.as_str()) == Some("sweep"))
        .expect("sweep workload present");
    let run = &sweep.get("runs").unwrap().as_arr().unwrap()[0];
    assert_eq!(run.get("sessions").unwrap().as_num().unwrap(), 8.0);
    let sps = run.get("sessions_per_sec").unwrap().as_num().unwrap();
    assert!((sps - 160.0).abs() < 1e-6, "sessions_per_sec was {sps}");
}

#[test]
fn profiled_report_matches_schema() {
    let workloads = synthetic_workloads(true);
    let text = to_json(&workloads, &[], true, Some(1.75));
    let doc = Json::parse(&text).expect("profiled report parses");
    assert_v1_shape(&doc, true);
    assert_eq!(
        doc.get("profile_overhead_pct").unwrap().as_num().unwrap(),
        1.75
    );
    let runs = doc.get("workloads").unwrap().as_arr().unwrap()[0]
        .get("runs")
        .unwrap()
        .as_arr()
        .unwrap();
    let prof = runs[0].get("profile").expect("profile block present");
    assert_eq!(prof.get("ticks").unwrap().as_num().unwrap(), 1220.0);
    assert_eq!(
        prof.get("phases_ns")
            .unwrap()
            .get("gpu.execute")
            .unwrap()
            .as_num()
            .unwrap(),
        6_000_000.0
    );
}

/// Validates the real report `scripts/bench.sh` emitted, when present.
/// `BENCH_frame.json` is gitignored (timings are per-machine), so a fresh
/// checkout skips; `scripts/ci.sh` re-runs this test right after the bench
/// smoke so CI always validates a freshly emitted report.
#[test]
fn emitted_bench_report_parses_when_present() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_frame.json");
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => {
            eprintln!("BENCH_frame.json not emitted yet; skipping");
            return;
        }
    };
    let doc = Json::parse(&text).expect("emitted report parses as strict JSON");
    assert_v1_shape(&doc, true);
}

/// The committed CI baseline must always satisfy the schema — `bench_diff`
/// in CI consumes it every run.
#[test]
fn committed_baseline_matches_schema() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scripts/bench_baseline.json");
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => {
            eprintln!("scripts/bench_baseline.json not committed yet; skipping");
            return;
        }
    };
    let doc = Json::parse(&text).expect("baseline parses as strict JSON");
    assert_v1_shape(&doc, true);
}
