//! Guards the `emerald-bench-v1` report schema: both a synthetic report
//! built through [`emerald::bench_report`] and the committed
//! `BENCH_frame.json` must parse with the in-tree strict JSON parser and
//! carry the fields downstream tooling greps for.

use emerald::bench_report::{to_json, PhaseTimes, PoolDispatch, Run, Workload};
use emerald::common::json::Json;

fn assert_v1_shape(doc: &Json, require_phases: bool) {
    assert_eq!(
        doc.get("schema").and_then(|s| s.as_str()),
        Some("emerald-bench-v1"),
        "schema tag"
    );
    assert!(doc.get("smoke").and_then(|s| s.as_bool()).is_some());
    assert!(doc.get("host_threads").and_then(|s| s.as_num()).is_some());
    let workloads = doc
        .get("workloads")
        .and_then(|w| w.as_arr())
        .expect("workloads array");
    assert!(!workloads.is_empty());
    for w in workloads {
        assert!(w.get("name").and_then(|n| n.as_str()).is_some());
        let runs = w.get("runs").and_then(|r| r.as_arr()).expect("runs array");
        assert!(!runs.is_empty());
        let mut threads_seen = Vec::new();
        for r in runs {
            for field in [
                "threads",
                "wall_ms",
                "cycles",
                "cycles_per_sec",
                "speedup_vs_1t",
            ] {
                assert!(
                    r.get(field).and_then(|v| v.as_num()).is_some(),
                    "run field {field} missing or non-numeric"
                );
            }
            threads_seen.push(r.get("threads").unwrap().as_num().unwrap() as u64);
            if require_phases {
                let phases = r.get("phases").expect("phases object");
                for field in ["setup_ms", "sim_ms", "readback_ms"] {
                    assert!(
                        phases.get(field).and_then(|v| v.as_num()).is_some(),
                        "phase field {field} missing or non-numeric"
                    );
                }
            }
        }
        // The 1-thread baseline comes first; speedup there is 1.0 (or 0.0
        // for a degenerate zero-time run, which must still serialize).
        assert_eq!(threads_seen[0], 1, "first run is the 1-thread baseline");
        let base_wall = runs[0].get("wall_ms").unwrap().as_num().unwrap();
        let base_speedup = runs[0].get("speedup_vs_1t").unwrap().as_num().unwrap();
        if base_wall > 0.0 {
            assert!((base_speedup - 1.0).abs() < 1e-9);
        }
    }
    // Dispatch-latency microbenchmark rows (may be empty, but the array
    // itself is part of the v1 shape since the adaptive-dispatch work).
    let dispatch = doc
        .get("pool_dispatch")
        .and_then(|d| d.as_arr())
        .expect("pool_dispatch array");
    for d in dispatch {
        assert!(d.get("threads").and_then(|v| v.as_num()).is_some());
        assert!(d.get("ns_per_run").and_then(|v| v.as_num()).is_some());
    }
}

#[test]
fn synthetic_report_matches_schema() {
    let workloads = vec![
        Workload {
            name: "alpha",
            runs: vec![
                Run {
                    threads: 1,
                    wall_ms: 12.5,
                    cycles: 4000,
                    phases: PhaseTimes {
                        setup_ms: 2.0,
                        sim_ms: 10.0,
                        readback_ms: 0.5,
                    },
                },
                Run {
                    threads: 4,
                    wall_ms: 25.0,
                    cycles: 4000,
                    phases: PhaseTimes {
                        setup_ms: 2.0,
                        sim_ms: 22.5,
                        readback_ms: 0.5,
                    },
                },
            ],
        },
        Workload {
            name: "beta",
            runs: vec![Run {
                threads: 1,
                wall_ms: 0.0, // degenerate timings must still serialize
                cycles: 0,
                phases: PhaseTimes::default(),
            }],
        },
    ];
    let dispatch = [
        PoolDispatch {
            threads: 2,
            ns_per_run: 900.0,
        },
        PoolDispatch {
            threads: 4,
            ns_per_run: 2100.0,
        },
    ];
    let text = to_json(&workloads, &dispatch, true);
    let doc = Json::parse(&text).expect("report parses as strict JSON");
    assert_v1_shape(&doc, true);

    // The >1-thread slowdown this breakdown was added for is visible:
    // sim_ms dominates and scales with wall_ms.
    let runs = doc.get("workloads").unwrap().as_arr().unwrap()[0]
        .get("runs")
        .unwrap()
        .as_arr()
        .unwrap();
    let sim0 = runs[0]
        .get("phases")
        .unwrap()
        .get("sim_ms")
        .unwrap()
        .as_num()
        .unwrap();
    let sim1 = runs[1]
        .get("phases")
        .unwrap()
        .get("sim_ms")
        .unwrap()
        .as_num()
        .unwrap();
    assert!(sim1 > sim0);
    assert!(runs[1].get("speedup_vs_1t").unwrap().as_num().unwrap() < 1.0);
}

/// Validates the real report `scripts/bench.sh` emitted, when present.
/// `BENCH_frame.json` is gitignored (timings are per-machine), so a fresh
/// checkout skips; `scripts/ci.sh` re-runs this test right after the bench
/// smoke so CI always validates a freshly emitted report.
#[test]
fn emitted_bench_report_parses_when_present() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_frame.json");
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => {
            eprintln!("BENCH_frame.json not emitted yet; skipping");
            return;
        }
    };
    let doc = Json::parse(&text).expect("emitted report parses as strict JSON");
    assert_v1_shape(&doc, true);
}
