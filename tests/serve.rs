//! Sweep-engine determinism: the work-stealing scheduler's interleaving
//! must be invisible in simulated results. The same job set is run at
//! 1/2/4 workers with shuffled submission orders, cold and forked, and
//! every per-session observable (cycles, framebuffer digest, compact
//! registry dump) must be bit-identical across all of them. A sweep is
//! only trustworthy if "how it was scheduled" can never leak into "what
//! it simulated".

use emerald::common::rng::Xorshift64;
use emerald::serve::sched::run_jobs;
use emerald::serve::sweep::JobSpec;
use emerald::serve::{JobParams, StartMode, SweepSpec};

/// Fisher–Yates with the in-tree RNG, so submission orders replay from a
/// seed.
fn shuffle<T>(v: &mut [T], rng: &mut Xorshift64) {
    for i in (1..v.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        v.swap(i, j);
    }
}

/// A seeded random job set over the divergence axes. Warmups vary so the
/// set mixes fork-group members (warmup > 0 sharing the default prefix)
/// with cold singletons, exercising both scheduler paths at once.
fn random_jobs(rng: &mut Xorshift64, n: usize) -> Vec<JobSpec> {
    (0..n)
        .map(|id| {
            let params = JobParams {
                warmup: rng.below(2) as u32,
                frames: 1 + rng.below(2) as u32,
                frame_offset: rng.below(3) as u32,
                seed: rng.below(4),
                ..JobParams::default()
            };
            JobSpec {
                id,
                label: format!("job{id}"),
                params,
            }
        })
        .collect()
}

/// The comparable signature of one finished session.
fn signature(out: &emerald::serve::SweepOutcome) -> Vec<(usize, u64, u64, String)> {
    out.results
        .iter()
        .map(|r| (r.id, r.cycles, r.fb_digest, r.registry_json.clone()))
        .collect()
}

#[test]
fn scheduler_interleaving_is_invisible() {
    let mut rng = Xorshift64::new(0xD15E_A5ED_5EED_0001);
    let jobs = random_jobs(&mut rng, 5);
    let mut reference = None;
    // Worker counts 1/2/4, each with its own shuffled submission order,
    // plus a repeat at 2 workers under a different order: every run must
    // land on the identical per-session signature.
    for (workers, shuffle_seed) in [(1usize, 11u64), (2, 22), (4, 33), (2, 44)] {
        let mut set = jobs.clone();
        shuffle(&mut set, &mut Xorshift64::new(shuffle_seed));
        let out = run_jobs(set, true, workers, None);
        assert_eq!(out.results.len(), jobs.len());
        let sig = signature(&out);
        match &reference {
            None => reference = Some(sig),
            Some(r) => assert_eq!(
                *r, sig,
                "workers={workers} shuffle={shuffle_seed} diverged from the reference run"
            ),
        }
    }
}

#[test]
fn forked_sweep_is_bit_identical_to_cold_sweep() {
    // Four sessions sharing one warmed prefix: forking must change *only*
    // the start mode, never a simulated observable.
    let spec = SweepSpec::parse(
        r#"{
            "name": "forkdiff",
            "base": {"model": "I1", "warmup": 1, "frames": 1},
            "axes": [{"key": "seed", "values": [0, 1, 2, 3]}]
        }"#,
    )
    .unwrap();
    let jobs = spec.expand().unwrap();
    let cold = run_jobs(jobs.clone(), false, 2, None);
    let forked = run_jobs(jobs, true, 2, None);
    assert_eq!(cold.prefixes, 0, "fork disabled never warms a prefix");
    assert_eq!(forked.prefixes, 1, "one shared prefix for the group");
    assert_eq!(signature(&cold), signature(&forked));
    assert_eq!(cold.total_cycles, forked.total_cycles);
    assert!(cold.results.iter().all(|r| r.start == StartMode::Cold));
    assert!(forked.results.iter().all(|r| r.start == StartMode::Forked));
}
