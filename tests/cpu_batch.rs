//! Oracle tests for batched CPU Work-phase execution
//! (`SocConfig::cpu_batch` → `CpuCoreModel::run_batch`).
//!
//! Batching is a host-time optimization and must be *invisible* to
//! simulated state: a core advanced `n` cycles in one `run_batch` call has
//! to land in exactly the state `n` individual `tick` calls produce, and
//! the SoC's batch scheduler must deliver every interaction (requests,
//! draw submission, frame-end flips) at the same simulated cycle the
//! per-cycle reference clocking would. Three oracles enforce this:
//!
//! 1. **Lockstep batch axis** — seeded random SoC scenarios run twice,
//!    identical except `SocConfig::cpu_batch`, and must agree bit-for-bit
//!    on the clock, per-frame records, framebuffer and stats registry at
//!    every frame barrier. The event-skip axis is drawn at random per
//!    scenario so both batch modes are exercised under both clockings.
//! 2. **Full matrix** — one fixed scenario across
//!    `cpu_batch × event_skip × GPU threads {1,2,4}`: all twelve runs must
//!    produce the identical frame.
//! 3. **Stall path** — a scenario built to saturate the per-core
//!    outstanding-miss limit; `stall_cycles` (bulk-burned by `run_batch`
//!    on stalled entry) must match the reference exactly.

use emerald::common::check::{check_n, env_cases};
use emerald::common::rng::Xorshift64;
use emerald::prelude::*;
use emerald::scene::mesh::unit_cube;
use emerald::soc::cpu::{CpuWorkload, Phase};

/// Case count for the lockstep oracle; override with
/// `EMERALD_BATCH_CASES`.
fn batch_cases() -> u32 {
    env_cases("EMERALD_BATCH_CASES", 3)
}

fn registry_json(soc: &Soc) -> String {
    let mut reg = Registry::new();
    soc.publish(&mut reg);
    reg.to_json()
}

/// Shrinks every `Work` phase so a frame stays test-sized (same scheme as
/// the event-skip lockstep oracle).
fn shrink(mut w: CpuWorkload, rng: &mut Xorshift64) -> CpuWorkload {
    let div = rng.range(6, 14);
    for p in &mut w.phases {
        if let Phase::Work { instrs, .. } = p {
            *instrs = (*instrs / div).max(64);
        }
    }
    w
}

/// A deterministic cube draw, parameterized by frame index.
fn cube_draw(soc: &Soc, frame: u32, aspect: f32) -> DrawCall {
    use emerald::common::math::{Mat4, Vec3};
    let a = 0.4 + frame as f32 * 0.08;
    let mvp = Mat4::perspective(60f32.to_radians(), aspect, 0.1, 50.0).mul_mat4(&Mat4::look_at(
        Vec3::new(2.0 * a.cos(), 1.0, 2.0 * a.sin()),
        Vec3::splat(0.0),
        Vec3::new(0.0, 1.0, 0.0),
    ));
    let fso = FsOptions {
        textured: false,
        ..FsOptions::default()
    };
    DrawCall {
        vb: VertexBuffer::upload(&soc.mem, &unit_cube()),
        topology: Topology::Triangles,
        vs: shaders::vertex_transform(),
        fs: shaders::fragment_shader(fso),
        mvp: mvp.to_array(),
        depth_test: true,
        depth_write: true,
        blend: false,
        texture: None,
    }
}

/// Draws a random SoC scenario from `rng` with the batch axis pinned to
/// `cpu_batch`. The event-skip axis is part of the *scenario* (drawn from
/// `rng`, so both sides of a lockstep pair agree on it).
fn random_config(rng: &mut Xorshift64, cpu_batch: bool) -> SocConfig {
    let kind = [MemCfgKind::Bas, MemCfgKind::Dcb, MemCfgKind::Hmc][rng.below(3) as usize];
    let dram = if rng.chance(0.5) {
        DramConfig::lpddr3_1333()
    } else {
        DramConfig::lpddr3_1600()
    };
    let (w, h) = if rng.chance(0.5) { (48, 32) } else { (64, 48) };
    let period = rng.range(150_000, 400_000);
    let mut cfg = SocConfig::case_study_1(kind.build(dram), w, h, period);
    let extras = [
        CpuWorkload::streamer(),
        CpuWorkload::compute(),
        CpuWorkload::mixed(),
    ];
    let mut workloads = vec![shrink(CpuWorkload::driver(), rng)];
    for e in extras {
        if rng.chance(0.5) {
            workloads.push(shrink(e, rng));
        }
    }
    cfg.cpu_workloads = workloads;
    cfg.gpu.event_skip = rng.chance(0.5);
    cfg.cpu_batch = cpu_batch;
    cfg
}

/// Oracle 1: per-cycle and batched instances of the *same* random scenario
/// advance in lockstep — identical clock, identical per-frame records,
/// identical framebuffer and registry snapshot at every frame barrier.
#[test]
fn random_soc_scenarios_are_batch_invariant() {
    check_n("soc_batch_axis", batch_cases(), |rng| {
        // Sample once, instantiate twice: the scenario (including its
        // event-skip setting) is identical, only the batch axis differs.
        let scenario = rng.next_u64();
        let cfg_ref = random_config(&mut Xorshift64::new(scenario), false);
        let cfg_bat = random_config(&mut Xorshift64::new(scenario), true);
        assert!(!cfg_ref.cpu_batch && cfg_bat.cpu_batch);
        assert_eq!(cfg_ref.gpu.event_skip, cfg_bat.gpu.event_skip);
        let frames = 1 + rng.below(2) as u32;
        let aspect = cfg_ref.width as f32 / cfg_ref.height as f32;
        let mut reference = Soc::new(cfg_ref);
        let mut batched = Soc::new(cfg_bat);
        for f in 0..frames {
            let d_ref = cube_draw(&reference, f, aspect);
            let d_bat = cube_draw(&batched, f, aspect);
            let r_ref = reference.run_frame(vec![d_ref], 60_000_000);
            let r_bat = batched.run_frame(vec![d_bat], 60_000_000);
            assert_eq!(
                r_ref.gpu_cycles, r_bat.gpu_cycles,
                "gpu_cycles diverged at frame {f}"
            );
            assert_eq!(
                r_ref.total_cycles, r_bat.total_cycles,
                "total_cycles diverged at frame {f}"
            );
            assert_eq!(
                reference.now(),
                batched.now(),
                "clock diverged at frame {f}"
            );
            assert_eq!(
                reference.rt.read_color(&reference.mem),
                batched.rt.read_color(&batched.mem),
                "framebuffer diverged at frame {f}"
            );
            assert_eq!(
                registry_json(&reference),
                registry_json(&batched),
                "registry diverged at frame {f}"
            );
        }
    });
}

/// A fixed two-core scenario for the matrix and stall oracles.
fn fixed_config(cpu_batch: bool, event_skip: bool, threads: usize) -> SocConfig {
    let mut cfg = SocConfig::case_study_1(
        MemCfgKind::Dcb.build(DramConfig::lpddr3_1600()),
        48,
        32,
        200_000,
    );
    let mut rng = Xorshift64::new(0xBA7C);
    cfg.cpu_workloads = vec![
        shrink(CpuWorkload::driver(), &mut rng),
        shrink(CpuWorkload::mixed(), &mut rng),
    ];
    cfg.cpu_batch = cpu_batch;
    cfg.gpu.event_skip = event_skip;
    cfg.gpu.threads = threads;
    cfg
}

/// Oracle 2: the full `cpu_batch × event_skip × threads` matrix produces
/// one bit-identical frame.
#[test]
fn batch_skip_thread_matrix_is_bit_identical() {
    let mut reference: Option<(u64, u64, u64, Vec<u32>, String)> = None;
    for cpu_batch in [false, true] {
        for event_skip in [false, true] {
            for threads in [1usize, 2, 4] {
                let cfg = fixed_config(cpu_batch, event_skip, threads);
                let aspect = cfg.width as f32 / cfg.height as f32;
                let mut soc = Soc::new(cfg);
                let d = cube_draw(&soc, 0, aspect);
                let r = soc.run_frame(vec![d], 60_000_000);
                let got = (
                    r.gpu_cycles,
                    r.total_cycles,
                    soc.now(),
                    soc.rt.read_color(&soc.mem),
                    registry_json(&soc),
                );
                match &reference {
                    None => reference = Some(got),
                    Some(want) => {
                        assert_eq!(
                            want, &got,
                            "matrix cell diverged: batch={cpu_batch} skip={event_skip} \
                             threads={threads}"
                        );
                    }
                }
            }
        }
    }
}

/// Regression: with a baseline (non-DASH) memory system and an idle
/// display, nothing bounds the batch window early in the frame, so a core
/// in an unsatisfied `WaitGpu` could pre-burn its fence polls across the
/// cycle where the draw submission later flips `gpu_done` — it then missed
/// the fence until the window's far edge and the frame barrier fired tens
/// of thousands of cycles late (caught driving `examples/trace_export.rs`
/// across the axis). All four `cpu_batch × event_skip` cells must agree.
#[test]
fn unbounded_windows_do_not_preburn_fence_polls() {
    let run = |cpu_batch: bool, event_skip: bool| {
        let mut cfg = SocConfig::case_study_1(
            MemorySystemConfig::baseline(2, DramConfig::lpddr3_1333()),
            64,
            48,
            400_000,
        );
        cfg.cpu_workloads = vec![CpuWorkload::driver(), CpuWorkload::compute()];
        cfg.cpu_batch = cpu_batch;
        cfg.gpu.event_skip = event_skip;
        let aspect = cfg.width as f32 / cfg.height as f32;
        let mut soc = Soc::new(cfg);
        let d = cube_draw(&soc, 0, aspect);
        let r = soc.run_frame(vec![d], 60_000_000);
        (r.gpu_cycles, r.total_cycles, soc.now(), registry_json(&soc))
    };
    let want = run(false, false);
    for (cpu_batch, event_skip) in [(false, true), (true, false), (true, true)] {
        assert_eq!(
            want,
            run(cpu_batch, event_skip),
            "diverged at batch={cpu_batch} skip={event_skip}"
        );
    }
}

/// Oracle 3: a scenario saturating the outstanding-miss limit. Stalled
/// cycles are bulk-burned by `run_batch` when a core enters a batch window
/// stalled; the count must match the per-cycle reference exactly, and the
/// scenario must actually stall (otherwise the oracle checks nothing).
#[test]
fn stalled_cores_batch_identically() {
    let stall_heavy = || CpuWorkload {
        phases: vec![
            Phase::Work {
                instrs: 3_000,
                mem_ratio: 1.0,
                footprint: 8 << 20,
                sequential: false,
            },
            Phase::WaitGpu,
        ],
    };
    let run = |cpu_batch: bool| {
        let mut cfg = fixed_config(cpu_batch, true, 1);
        cfg.cpu_workloads.push(stall_heavy());
        cfg.cpu_workloads.push(stall_heavy());
        let aspect = cfg.width as f32 / cfg.height as f32;
        let mut soc = Soc::new(cfg);
        let d = cube_draw(&soc, 0, aspect);
        soc.run_frame(vec![d], 60_000_000);
        let stalls: Vec<u64> = soc.cpu_stats().iter().map(|s| s.stall_cycles).collect();
        (stalls, soc.now(), registry_json(&soc))
    };
    let (stalls_ref, now_ref, reg_ref) = run(false);
    let (stalls_bat, now_bat, reg_bat) = run(true);
    assert_eq!(
        stalls_ref, stalls_bat,
        "stall_cycles diverged across batch axis"
    );
    assert_eq!(now_ref, now_bat, "clock diverged across batch axis");
    assert_eq!(reg_ref, reg_bat, "registry diverged across batch axis");
    assert!(
        stalls_ref.iter().any(|&s| s > 1_000),
        "scenario failed to stall: {stalls_ref:?}"
    );
}
